//! The uniformity dataflow and the kernel-body rules.
//!
//! Three analyses run over each kernel function's CFG:
//!
//! 1. **Divergence seeding** (flow-insensitive fixpoint): a variable is
//!    *Divergent* if it is bound by a per-lane loop (`for lane in
//!    lanes_of(mask)`, `0..WARP_SIZE`, iteration over a `Lanes` container)
//!    or assigned from an expression that reads divergent data (a
//!    lane-indexed container element or another divergent variable).
//!    Warp-primitive results are *Uniform* by construction — cross-lane
//!    communication collapses divergence — so `ballot(..) != mask` is a
//!    uniform branch even though `ballot` reads per-lane data. With
//!    summaries, a call to a helper whose return value reads per-lane
//!    data is itself divergent.
//! 2. **Declared-mask dataflow** (flow-sensitive, forward): tracks the
//!    most recent `set_active(expr)` declaration along each path, joining
//!    to *Unknown* (permissive) where paths disagree. Rule `divergent-sync`
//!    fires when a warp primitive's participation mask contradicts the
//!    declaration: full mask under divergent control with no declaration,
//!    full mask when only a subset is declared converged, or a mask that
//!    is neither the declared expression nor derived from it by
//!    intersection. With summaries, a call to a helper that hides a
//!    full-mask primitive (a *latent* primitive) fires at the divergent
//!    call site.
//! 3. **Pool-access dataflow** (flow-sensitive, forward): abstracts the
//!    block-shared `SamplePool` cursor as `Clear < Atomic < Plain`. Rule
//!    `pool-race` fires when an unsynchronized cursor read follows any
//!    pool access (or an atomic access follows an unsynchronized read)
//!    with no `block_barrier` on some path — the static counterpart of
//!    the sanitizer's racecheck. With summaries, a helper's entry-exposed
//!    pool accesses compose with the caller's state.
//!
//! Rule `primitive-charges-counters` is per-function rather than per-path:
//! a `pub fn` taking `&mut KernelCounters` must charge the counters
//! through that parameter or forward it to a callee.

use std::collections::HashSet;

use crate::callgraph::{FnSummary, Summaries, SUM_POOL_CLEAR};
use crate::cfg::{extract_calls_spanned, lower, Action, Call, Cfg, Guard};
use crate::lex::{Tok, TokKind};
use crate::parse::{join, Block, FnDef, Stmt};

/// A rule finding before the file name is attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    pub line: Option<u32>,
    pub col: Option<u32>,
    pub rule: &'static str,
    pub message: String,
}

/// The six warp-synchronous primitives (mask at argument index 2).
const PRIMS: &[&str] = &[
    "any",
    "ballot",
    "shfl",
    "reduce_sum",
    "reduce_count",
    "reduce_max_by_key",
];

/// Free calls whose result is warp-uniform (cross-lane communication).
const UNIFORM_RESULT: &[&str] = &[
    "any",
    "ballot",
    "shfl",
    "reduce_sum",
    "reduce_count",
    "reduce_max_by_key",
    "first_lane",
];

/// Free calls whose result is a per-lane container.
const CONTAINER_RESULT: &[&str] = &["warp_load", "warp_scan"];

/// Counter-charging methods (the dynamic cost model's entry points).
const CHARGE: &[&str] = &["warp_instruction", "warp_load", "warp_store", "diverge"];

/// Pool accesses that go through the atomic cursor.
const POOL_ATOMIC: &[&str] = &["fetch", "fetch_many", "fetch_sanitized"];
/// Pool accesses that read the cursor without synchronization.
const POOL_PLAIN: &[&str] = &["read_cursor_unsync"];
/// Block-wide synchronization points that clear pool-race state.
const POOL_BARRIER: &[&str] = &["block_barrier"];

/// Names whose summaries are never consulted: primitives and pool
/// accessors have built-in transfer behavior (so a corpus function
/// shadowing a primitive name cannot weaken the analysis), and ubiquitous
/// std-trait names would alias unrelated implementations
/// ([`crate::callgraph::opaque_name`]).
fn has_builtin_transfer(name: &str) -> bool {
    name == "set_active"
        || POOL_ATOMIC.contains(&name)
        || POOL_PLAIN.contains(&name)
        || POOL_BARRIER.contains(&name)
        || PRIMS.contains(&name)
        || crate::callgraph::opaque_name(name)
}

/// Is this function subject to the kernel-body rules?
pub fn is_kernel_fn(file: &str, f: &FnDef) -> bool {
    if f.in_test {
        return false;
    }
    if file.replace('\\', "/").ends_with("kernel.rs") {
        return true;
    }
    const KERNEL_TYPES: &[&str] = &[
        "Lanes",
        "WarpMask",
        "SamplePool",
        "KernelCounters",
        "WarpSanitizer",
    ];
    f.params
        .iter()
        .any(|p| KERNEL_TYPES.iter().any(|t| p.ty.contains(t)))
}

/// Run every kernel-body rule on one function, intraprocedurally — every
/// call is opaque. This is the PR-4 analyzer, kept as the before/after
/// baseline for the interprocedural fixture tests.
pub fn analyze_kernel_fn(f: &FnDef) -> Vec<RawFinding> {
    analyze_kernel_fn_with(f, &Summaries::empty())
}

/// Run every kernel-body rule on one function, consulting `sums` at each
/// call site.
pub fn analyze_kernel_fn_with(f: &FnDef, sums: &Summaries) -> Vec<RawFinding> {
    let cfg = lower(&f.body);
    let div = Divergence::build(f, &cfg, sums);
    let mut out = check_flow_rules(&cfg, &div, sums);
    out.extend(check_charges(f, &cfg));
    out
}

// ---------------------------------------------------------------------------
// Divergence seeding
// ---------------------------------------------------------------------------

/// The divergence environment: which variables hold per-lane (divergent)
/// scalars and which hold per-lane containers.
pub struct Divergence {
    divergent: HashSet<String>,
    containers: HashSet<String>,
}

impl Divergence {
    fn build(f: &FnDef, cfg: &Cfg, sums: &Summaries) -> Self {
        let mut d = Divergence {
            divergent: HashSet::new(),
            containers: HashSet::new(),
        };
        for p in &f.params {
            if p.ty.contains("Lanes") || p.ty.contains("WARP_SIZE") {
                d.containers.insert(p.name.clone());
            }
        }
        // Fixpoint: divergence propagates through assignments, and lane
        // loops over freshly discovered containers seed new bindings.
        loop {
            let before = (d.divergent.len(), d.containers.len());
            for g in &cfg.guards {
                if let Guard::Loop { iter, bindings } = g {
                    if d.lane_loop(iter, sums) {
                        d.divergent.extend(bindings.iter().cloned());
                    }
                }
            }
            for node in &cfg.nodes {
                for a in &node.actions {
                    if let Action::Def { names, rhs, ty } = a {
                        let ty_s = join(ty);
                        if ty_s.contains("Lanes")
                            || ty_s.contains("WARP_SIZE")
                            || rhs_makes_container(rhs, sums)
                        {
                            d.containers.extend(names.iter().cloned());
                        }
                        if d.expr_divergent(rhs, sums) {
                            d.divergent.extend(names.iter().cloned());
                        }
                    }
                }
            }
            if (d.divergent.len(), d.containers.len()) == before {
                break;
            }
        }
        d
    }

    /// Does iterating this expression visit lanes individually?
    fn lane_loop(&self, iter: &[Tok], sums: &Summaries) -> bool {
        let mentions = |name: &str| iter.iter().any(|t| t.is_ident(name));
        if mentions("lanes_of") || mentions("WARP_SIZE") {
            return true;
        }
        // Iterating a per-lane container (`for v in vals.iter()` …).
        if iter
            .iter()
            .any(|t| t.kind == TokKind::Ident && self.containers.contains(&t.text))
        {
            return true;
        }
        self.expr_divergent(iter, sums)
    }

    /// Does this expression read divergent (per-lane) data?
    fn expr_divergent(&self, toks: &[Tok], sums: &Summaries) -> bool {
        // Warp-primitive results are uniform: mask out their whole spans so
        // per-lane arguments inside them don't leak divergence.
        let calls = extract_calls_spanned(toks);
        let mut masked = vec![false; toks.len()];
        for (c, (s, e)) in &calls {
            if !c.is_method && UNIFORM_RESULT.contains(&c.name.as_str()) {
                for m in masked.iter_mut().take(e + 1).skip(*s) {
                    *m = true;
                }
            }
        }
        // A call to a helper whose summary says the result reads per-lane
        // data makes the whole expression divergent.
        for (c, (s, _)) in &calls {
            if masked[*s] || has_builtin_transfer(&c.name) {
                continue;
            }
            if sums.get(&c.name).is_some_and(|f| f.divergent_out) {
                return true;
            }
        }
        for (i, t) in toks.iter().enumerate() {
            if masked[i] || t.kind != TokKind::Ident {
                continue;
            }
            if self.divergent.contains(&t.text) {
                return true;
            }
            if self.containers.contains(&t.text) && toks.get(i + 1).is_some_and(|n| n.is_punct("["))
            {
                return true;
            }
        }
        false
    }

    /// Is any guard governing this node warp-divergent?
    fn control_divergent(&self, cfg: &Cfg, node: usize, sums: &Summaries) -> bool {
        cfg.nodes[node]
            .guards
            .iter()
            .any(|&g| match &cfg.guards[g] {
                Guard::Cond(toks) => self.expr_divergent(toks, sums),
                Guard::Loop { iter, .. } => self.lane_loop(iter, sums),
            })
    }
}

/// Container-producing initializer: a `[init; WARP_SIZE]` array literal, a
/// call returning `Lanes` (`warp_load` / `warp_scan`), or a call to a
/// helper whose summary returns a container.
fn rhs_makes_container(rhs: &[Tok], sums: &Summaries) -> bool {
    if rhs.first().is_some_and(|t| t.is_punct("[")) && rhs.iter().any(|t| t.is_ident("WARP_SIZE")) {
        return true;
    }
    if rhs.iter().any(|t| t.is_ident("Lanes")) {
        return true;
    }
    extract_calls_spanned(rhs).iter().any(|(c, _)| {
        (!c.is_method && CONTAINER_RESULT.contains(&c.name.as_str()))
            || (!has_builtin_transfer(&c.name)
                && sums.get(&c.name).is_some_and(|f| f.container_out))
    })
}

// ---------------------------------------------------------------------------
// Flow-sensitive state: declared mask × pool access
// ---------------------------------------------------------------------------

/// The `set_active` declaration lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Decl {
    /// Unreachable.
    Bottom,
    /// No declaration yet on any path.
    None,
    /// Every path declared exactly this mask expression.
    Expr(String),
    /// Paths disagree — be permissive.
    Unknown,
}

/// Pool-access lattice: `Bottom < Clear < Atomic < Plain` (join = max).
type Pool = u8;
const POOL_BOTTOM: Pool = 0;
const POOL_CLEAR: Pool = SUM_POOL_CLEAR;
const POOL_ATOMIC_ST: Pool = 2;
const POOL_PLAIN_ST: Pool = 3;

#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    decl: Decl,
    pool: Pool,
    /// Still reachable from function entry with no barrier on some path —
    /// what decides whether a pool access is *entry-exposed* in summaries.
    pre: bool,
}

impl State {
    fn bottom() -> State {
        State {
            decl: Decl::Bottom,
            pool: POOL_BOTTOM,
            pre: false,
        }
    }

    fn entry() -> State {
        State {
            decl: Decl::None,
            pool: POOL_CLEAR,
            pre: true,
        }
    }

    fn join(&self, other: &State) -> State {
        let decl = match (&self.decl, &other.decl) {
            (Decl::Bottom, d) | (d, Decl::Bottom) => d.clone(),
            (a, b) if a == b => a.clone(),
            _ => Decl::Unknown,
        };
        State {
            decl,
            pool: self.pool.max(other.pool),
            pre: self.pre || other.pre,
        }
    }
}

/// Apply one call's effect to the state (no finding emission). Callee
/// summaries compose: a helper that touches the pool leaves the caller in
/// the helper's exit state, and a helper that re-declares the active mask
/// invalidates the caller's declaration (permissively).
fn transfer_call(state: &mut State, c: &Call, sums: &Summaries) {
    if c.name == "set_active" {
        if let Some(arg) = c.args.first() {
            state.decl = Decl::Expr(join(arg));
        }
        return;
    }
    let n = c.name.as_str();
    if POOL_BARRIER.contains(&n) {
        state.pool = POOL_CLEAR;
        state.pre = false;
    } else if POOL_ATOMIC.contains(&n) {
        state.pool = state.pool.max(POOL_ATOMIC_ST);
    } else if POOL_PLAIN.contains(&n) {
        state.pool = POOL_PLAIN_ST;
    } else if !has_builtin_transfer(n) {
        if let Some(s) = sums.get(n) {
            if s.sets_active {
                state.decl = Decl::Unknown;
            }
            if s.pool_touched {
                if s.pool_out == POOL_CLEAR {
                    // The helper's last pool-relevant action was a barrier
                    // on every path.
                    state.pool = POOL_CLEAR;
                    state.pre = false;
                } else {
                    state.pool = state.pool.max(s.pool_out);
                }
            }
        }
    }
}

fn transfer_node(mut state: State, node: &crate::cfg::Node, sums: &Summaries) -> State {
    for a in &node.actions {
        if let Action::Call(c) = a {
            transfer_call(&mut state, c, sums);
        }
    }
    state
}

/// Solve the forward dataflow to fixpoint; returns each node's exit state.
fn solve_outs(cfg: &Cfg, sums: &Summaries) -> Vec<State> {
    let n = cfg.nodes.len();
    let preds = cfg.preds();
    let mut outs = vec![State::bottom(); n];
    loop {
        let mut changed = false;
        for i in 0..n {
            let mut inp = if i == 0 {
                State::entry()
            } else {
                State::bottom()
            };
            for &p in &preds[i] {
                inp = inp.join(&outs[p]);
            }
            let out = transfer_node(inp, &cfg.nodes[i], sums);
            if out != outs[i] {
                outs[i] = out;
                changed = true;
            }
        }
        if !changed {
            return outs;
        }
    }
}

fn entry_states(cfg: &Cfg, outs: &[State]) -> Vec<State> {
    let preds = cfg.preds();
    (0..cfg.nodes.len())
        .map(|i| {
            let mut inp = if i == 0 {
                State::entry()
            } else {
                State::bottom()
            };
            for &p in &preds[i] {
                inp = inp.join(&outs[p]);
            }
            inp
        })
        .collect()
}

/// Syntactically a full (all-lanes) mask?
fn is_full_mask(m: &str) -> bool {
    m == "u32 :: MAX"
        || m == "WarpMask :: MAX"
        || m.ends_with("FULL_MASK")
        || m == "! 0"
        || m == "! 0u32"
        || m == "0xffff_ffff"
        || m == "0xffffffff"
}

/// Replay the fixpoint states through each node and emit findings for the
/// `divergent-sync` and `pool-race` rules, composing callee summaries.
fn check_flow_rules(cfg: &Cfg, div: &Divergence, sums: &Summaries) -> Vec<RawFinding> {
    let outs = solve_outs(cfg, sums);
    let states = entry_states(cfg, &outs);
    let mut out = Vec::new();
    for (i, node) in cfg.nodes.iter().enumerate() {
        let mut st = states[i].clone();
        if st.pool == POOL_BOTTOM {
            continue; // unreachable
        }
        let ctrl_div = div.control_divergent(cfg, i, sums);
        for a in &node.actions {
            let Action::Call(c) = a else { continue };
            if !c.is_method && PRIMS.contains(&c.name.as_str()) {
                if let Some(mask) = c.args.get(2) {
                    check_prim_mask(c, mask, &st, ctrl_div, cfg, &mut out);
                }
            }
            let n = c.name.as_str();
            if POOL_PLAIN.contains(&n) && st.pool >= POOL_ATOMIC_ST {
                out.push(RawFinding {
                    line: Some(c.line),
                    col: Some(c.col),
                    rule: "pool-race",
                    message: format!(
                        "unsynchronized pool cursor read `{n}` races an earlier \
                         pool access on some path (insert block_barrier first)"
                    ),
                });
            } else if POOL_ATOMIC.contains(&n) && st.pool == POOL_PLAIN_ST {
                out.push(RawFinding {
                    line: Some(c.line),
                    col: Some(c.col),
                    rule: "pool-race",
                    message: format!(
                        "atomic pool access `{n}` follows an unsynchronized \
                         cursor read on some path (insert block_barrier between \
                         them)"
                    ),
                });
            } else if !has_builtin_transfer(n) {
                if let Some(s) = sums.get(n) {
                    check_callee_summary(c, s, &st, ctrl_div, &mut out);
                }
            }
            transfer_call(&mut st, c, sums);
        }
    }
    // Sort with rule and message as tiebreakers: two findings from
    // different rules (or different messages of one rule) can share a
    // (line, col) site, and position alone would leave their order to the
    // emission order of the node walk.
    out.sort_by(|a, b| {
        (a.line, a.col, a.rule, a.message.as_str()).cmp(&(
            b.line,
            b.col,
            b.rule,
            b.message.as_str(),
        ))
    });
    out.dedup();
    out
}

/// Interprocedural composition at one call site: entry-exposed pool
/// accesses inside the callee race with the caller's pool state, and
/// latent full-mask primitives inside the callee fire when the call site
/// itself is divergent and undeclared.
fn check_callee_summary(
    c: &Call,
    s: &FnSummary,
    st: &State,
    ctrl_div: bool,
    out: &mut Vec<RawFinding>,
) {
    let n = c.name.as_str();
    if s.pool_plain_entry && st.pool >= POOL_ATOMIC_ST {
        out.push(RawFinding {
            line: Some(c.line),
            col: Some(c.col),
            rule: "pool-race",
            message: format!(
                "unsynchronized pool cursor read inside `{n}` races an earlier \
                 pool access on some path (insert block_barrier before the call)"
            ),
        });
    } else if s.pool_atomic_entry && st.pool == POOL_PLAIN_ST {
        out.push(RawFinding {
            line: Some(c.line),
            col: Some(c.col),
            rule: "pool-race",
            message: format!(
                "atomic pool access inside `{n}` follows an unsynchronized \
                 cursor read on some path (insert block_barrier before the call)"
            ),
        });
    }
    if ctrl_div && st.decl == Decl::None {
        if let Some(prim) = s.latent_prims.first() {
            out.push(RawFinding {
                line: Some(c.line),
                col: Some(c.col),
                rule: "divergent-sync",
                message: format!(
                    "warp primitive `{prim}` reached via `{n}` is called with a \
                     full mask under divergent control flow and no set_active \
                     declaration"
                ),
            });
        }
    }
}

fn check_prim_mask(
    c: &Call,
    mask: &[Tok],
    st: &State,
    ctrl_div: bool,
    cfg: &Cfg,
    out: &mut Vec<RawFinding>,
) {
    let m = join(mask);
    match &st.decl {
        Decl::None => {
            if ctrl_div && is_full_mask(&m) {
                out.push(RawFinding {
                    line: Some(c.line),
                    col: Some(c.col),
                    rule: "divergent-sync",
                    message: format!(
                        "warp primitive `{}` called with a full mask under \
                         divergent control flow and no set_active declaration",
                        c.name
                    ),
                });
            }
        }
        Decl::Expr(declared) => {
            if m == *declared || is_full_mask(declared) {
                return;
            }
            if is_full_mask(&m) {
                out.push(RawFinding {
                    line: Some(c.line),
                    col: Some(c.col),
                    rule: "divergent-sync",
                    message: format!(
                        "warp primitive `{}` called with full mask but \
                         set_active declared only `{declared}` converged",
                        c.name
                    ),
                });
            } else if !derived_by_intersection(&m, declared, cfg) {
                out.push(RawFinding {
                    line: Some(c.line),
                    col: Some(c.col),
                    rule: "divergent-sync",
                    message: format!(
                        "warp primitive `{}` called with stale mask `{m}` but \
                         set_active declared `{declared}`",
                        c.name
                    ),
                });
            }
        }
        Decl::Bottom | Decl::Unknown => {}
    }
}

/// Is mask text `m` derived from declared mask `d` by intersection —
/// either literally (`d & …`) or through a variable whose definition
/// intersects with `d`?
fn derived_by_intersection(m: &str, d: &str, cfg: &Cfg) -> bool {
    if m.contains(d) && m.contains('&') {
        return true;
    }
    for node in &cfg.nodes {
        for a in &node.actions {
            if let Action::Def { names, rhs, .. } = a {
                if names.iter().any(|n| n == m) {
                    let r = join(rhs);
                    if r.contains(d) && r.contains('&') {
                        return true;
                    }
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Summary extraction (flow-related fields)
// ---------------------------------------------------------------------------

/// Compute the flow-related summary fields for one function: return-value
/// divergence, mask re-declaration, entry-exposed pool accesses, exit pool
/// state, and latent full-mask primitives. `unordered_out` and `blocks`
/// are filled in by [`crate::order`] and [`crate::blocking`].
pub fn flow_summary(f: &FnDef, sums: &Summaries) -> FnSummary {
    let cfg = lower(&f.body);
    let div = Divergence::build(f, &cfg, sums);
    let outs = solve_outs(&cfg, sums);
    let states = entry_states(&cfg, &outs);
    let mut s = FnSummary::default();
    for (i, node) in cfg.nodes.iter().enumerate() {
        let mut st = states[i].clone();
        if st.pool == POOL_BOTTOM {
            continue;
        }
        let ctrl_div = div.control_divergent(&cfg, i, sums);
        for a in &node.actions {
            let Action::Call(c) = a else { continue };
            let n = c.name.as_str();
            if c.name == "set_active" {
                s.sets_active = true;
            } else if !c.is_method && PRIMS.contains(&n) {
                // A full-mask primitive that is locally clean (converged
                // control, no declaration) is *latent*: it becomes a
                // violation only at a divergent call site.
                if let Some(mask) = c.args.get(2) {
                    if is_full_mask(&join(mask)) && st.decl == Decl::None && !ctrl_div {
                        s.latent_prims.push(c.name.clone());
                    }
                }
            }
            if POOL_ATOMIC.contains(&n) {
                s.pool_touched = true;
                if st.pre {
                    s.pool_atomic_entry = true;
                }
            } else if POOL_PLAIN.contains(&n) {
                s.pool_touched = true;
                if st.pre {
                    s.pool_plain_entry = true;
                }
            } else if POOL_BARRIER.contains(&n) {
                s.pool_touched = true;
            } else if !has_builtin_transfer(n) {
                if let Some(cs) = sums.get(n) {
                    s.sets_active |= cs.sets_active;
                    if cs.pool_touched {
                        s.pool_touched = true;
                        if st.pre {
                            s.pool_atomic_entry |= cs.pool_atomic_entry;
                            s.pool_plain_entry |= cs.pool_plain_entry;
                        }
                    }
                    if !ctrl_div && st.decl == Decl::None {
                        for p in &cs.latent_prims {
                            s.latent_prims.push(p.clone());
                        }
                    }
                }
            }
            transfer_call(&mut st, c, sums);
        }
    }
    // Exit pool state: join over reachable exit nodes.
    let mut pool_out = POOL_BOTTOM;
    for (i, node) in cfg.nodes.iter().enumerate() {
        if node.succs.is_empty() && outs[i].pool != POOL_BOTTOM {
            pool_out = pool_out.max(outs[i].pool);
        }
    }
    s.pool_out = if pool_out == POOL_BOTTOM {
        POOL_CLEAR
    } else {
        pool_out
    };
    // Return-value divergence.
    for expr in return_exprs(&f.body) {
        if div.expr_divergent(expr, sums) {
            s.divergent_out = true;
        } else if rhs_makes_container(expr, sums)
            || expr
                .iter()
                .any(|t| t.kind == TokKind::Ident && div.containers.contains(&t.text))
        {
            s.container_out = true;
        }
    }
    s.latent_prims.sort();
    s.latent_prims.dedup();
    s.latent_prims.truncate(8);
    s
}

/// Every `return expr;` in the body (recursively) plus the top-level tail
/// expression, if any.
pub(crate) fn return_exprs(body: &Block) -> Vec<&[Tok]> {
    fn collect<'a>(b: &'a Block, out: &mut Vec<&'a [Tok]>) {
        for s in &b.stmts {
            match s {
                Stmt::Return(toks) if !toks.is_empty() => out.push(toks),
                Stmt::Let {
                    else_block: Some(eb),
                    ..
                } => collect(eb, out),
                Stmt::If { then_b, else_b, .. } => {
                    collect(then_b, out);
                    if let Some(eb) = else_b {
                        collect(eb, out);
                    }
                }
                Stmt::While { body, .. } | Stmt::Loop { body } | Stmt::For { body, .. } => {
                    collect(body, out)
                }
                Stmt::Match { arms, .. } => {
                    for (_, body) in arms {
                        collect(body, out);
                    }
                }
                Stmt::Block(inner) | Stmt::Unsafe { body: inner, .. } => collect(inner, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    collect(body, &mut out);
    if let Some(Stmt::Expr(toks)) = body.stmts.last() {
        out.push(toks);
    }
    out
}

// ---------------------------------------------------------------------------
// primitive-charges-counters
// ---------------------------------------------------------------------------

/// A `pub fn` taking `&mut KernelCounters` must charge the counters
/// through that parameter or forward it to a callee that does.
fn check_charges(f: &FnDef, cfg: &Cfg) -> Vec<RawFinding> {
    if !f.is_pub {
        return Vec::new();
    }
    let Some(p) = f
        .params
        .iter()
        .find(|p| p.ty.contains("mut KernelCounters"))
    else {
        return Vec::new();
    };
    let pname = &p.name;
    let charged = cfg.nodes.iter().flat_map(|n| &n.actions).any(|a| {
        let Action::Call(c) = a else { return false };
        if c.is_method && CHARGE.contains(&c.name.as_str()) && c.recv.as_deref() == Some(pname) {
            return true;
        }
        // Forwarding the counters to a callee also counts as charging —
        // the callee is checked at its own definition.
        c.args.iter().any(|arg| arg_is_var(arg, pname))
    });
    if charged {
        Vec::new()
    } else {
        vec![RawFinding {
            line: None,
            col: None,
            rule: "primitive-charges-counters",
            message: format!(
                "pub fn {} takes &mut KernelCounters but never charges them \
                 (warp_instruction/warp_load/warp_store/diverge)",
                f.name
            ),
        }]
    }
}

/// Is this argument exactly the variable `name`, modulo `&` / `mut` / `*`?
fn arg_is_var(arg: &[Tok], name: &str) -> bool {
    let mut i = 0;
    while i < arg.len() && (arg[i].is_punct("&") || arg[i].is_ident("mut") || arg[i].is_punct("*"))
    {
        i += 1;
    }
    arg.len() == i + 1 && arg[i].is_ident(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn kernel_findings(src: &str) -> Vec<RawFinding> {
        let fns = parse_file(&lex(src));
        fns.iter().flat_map(analyze_kernel_fn).collect()
    }

    fn kernel_findings_inter(src: &str) -> Vec<RawFinding> {
        let fns = parse_file(&lex(src));
        let sums = Summaries::build(&fns);
        fns.iter()
            .flat_map(|f| analyze_kernel_fn_with(f, &sums))
            .collect()
    }

    #[test]
    fn full_mask_in_lane_loop_is_divergent_sync() {
        let src = "pub fn k(ctr: &mut KernelCounters, san: &WarpSanitizer, mask: WarpMask, pred: &Lanes<bool>) -> u32 {\n\
            let mut acc = 0u32;\n\
            for lane in lanes_of(mask) {\n\
                acc |= ballot(ctr, san, FULL_MASK, pred);\n\
            }\n\
            acc\n\
        }";
        let f = kernel_findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "divergent-sync");
        assert_eq!(f[0].line, Some(4));
        assert!(f[0].col.is_some());
    }

    #[test]
    fn masked_prim_outside_divergence_is_clean() {
        let src = "pub fn k(ctr: &mut KernelCounters, san: &WarpSanitizer, mask: WarpMask, pred: &Lanes<bool>) -> u32 {\n\
            ballot(ctr, san, mask, pred)\n\
        }";
        assert!(kernel_findings(src).is_empty());
    }

    #[test]
    fn stale_mask_after_set_active_flagged() {
        let src = "pub fn k(ctr: &mut KernelCounters, san: &WarpSanitizer, mask: WarpMask, pred: &Lanes<bool>) {\n\
            let gone = ballot(ctr, san, mask, pred);\n\
            let live = mask & !gone;\n\
            san.set_active(live);\n\
            reduce_count(ctr, san, mask, pred);\n\
        }";
        let f = kernel_findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "divergent-sync");
        assert!(f[0].message.contains("stale mask `mask`"), "{f:?}");
    }

    #[test]
    fn declared_mask_and_subsets_are_clean() {
        let src = "pub fn k(ctr: &mut KernelCounters, san: &WarpSanitizer, mask: WarpMask, pred: &Lanes<bool>) {\n\
            san.set_active(mask);\n\
            ballot(ctr, san, mask, pred);\n\
            let sub = mask & 0xff;\n\
            reduce_count(ctr, san, sub, pred);\n\
        }";
        assert!(kernel_findings(src).is_empty());
    }

    #[test]
    fn full_declaration_allows_full_mask() {
        let src = "pub fn k(ctr: &mut KernelCounters, san: &WarpSanitizer, mask: WarpMask, pred: &Lanes<bool>) {\n\
            san.set_active(u32::MAX);\n\
            ballot(ctr, san, u32::MAX, pred);\n\
        }";
        assert!(kernel_findings(src).is_empty());
    }

    #[test]
    fn conflicting_declarations_join_permissively() {
        // A loop whose body re-declares: back edge joins Decl::None with
        // Expr(mask) -> Unknown, so no finding.
        let src = "pub fn k(ctr: &mut KernelCounters, san: &WarpSanitizer, mask: WarpMask, pred: &Lanes<bool>) {\n\
            loop {\n\
                if any(ctr, san, mask, pred) { break; }\n\
                san.set_active(mask);\n\
            }\n\
        }";
        assert!(kernel_findings(src).is_empty());
    }

    #[test]
    fn uniform_branch_on_primitive_result_is_clean() {
        let src = "pub fn k(ctr: &mut KernelCounters, san: &WarpSanitizer, mask: WarpMask, pred: &Lanes<bool>) {\n\
            let b = ballot(ctr, san, mask, pred);\n\
            if b != 0 && b != mask {\n\
                reduce_count(ctr, san, mask, pred);\n\
            }\n\
        }";
        assert!(kernel_findings(src).is_empty());
    }

    #[test]
    fn plain_read_after_atomic_fetch_is_pool_race() {
        let src = "pub fn k(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
            let s = pool.fetch_sanitized(san);\n\
            let c = pool.read_cursor_unsync(san);\n\
            s + c\n\
        }";
        let f = kernel_findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "pool-race");
        assert_eq!(f[0].line, Some(3));
    }

    #[test]
    fn barrier_between_accesses_clears_pool_race() {
        let src = "pub fn k(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
            let s = pool.fetch_sanitized(san);\n\
            san.block_barrier();\n\
            pool.read_cursor_unsync(san) + s\n\
        }";
        assert!(kernel_findings(src).is_empty());
    }

    #[test]
    fn race_on_one_path_only_still_flagged() {
        let src = "pub fn k(pool: &SamplePool, san: &WarpSanitizer, c: bool) -> usize {\n\
            if c {\n\
                pool.fetch_sanitized(san);\n\
            } else {\n\
                san.block_barrier();\n\
            }\n\
            pool.read_cursor_unsync(san)\n\
        }";
        let f = kernel_findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "pool-race");
    }

    #[test]
    fn uncharged_counters_param_flagged() {
        let src = "pub fn bad(ctr: &mut KernelCounters, mask: WarpMask) -> u32 {\n\
            mask.count_ones()\n\
        }";
        let f = kernel_findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "primitive-charges-counters");
        assert_eq!(f[0].line, None);
        assert!(f[0].message.contains("pub fn bad"), "{f:?}");
    }

    #[test]
    fn charging_and_forwarding_both_count() {
        let direct = "pub fn good(ctr: &mut KernelCounters, mask: WarpMask) {\n\
            ctr.warp_instruction(mask);\n\
        }";
        assert!(kernel_findings(direct).is_empty());
        let forwarded = "pub fn fwd(ctr: &mut KernelCounters, mask: WarpMask) {\n\
            helper(ctr, mask);\n\
        }";
        assert!(kernel_findings(forwarded).is_empty());
    }

    // --- interprocedural ---

    const HIDDEN_PRIM: &str = "\
fn full_ballot(ctr: &mut KernelCounters, san: &WarpSanitizer, pred: &Lanes<bool>) -> u32 {\n\
    ballot(ctr, san, FULL_MASK, pred)\n\
}\n\
pub fn k(ctr: &mut KernelCounters, san: &WarpSanitizer, mask: WarpMask, pred: &Lanes<bool>) -> u32 {\n\
    let mut acc = 0u32;\n\
    for lane in lanes_of(mask) {\n\
        acc |= full_ballot(ctr, san, pred);\n\
    }\n\
    acc\n\
}\n";

    #[test]
    fn latent_prim_invisible_intraprocedurally() {
        assert!(kernel_findings(HIDDEN_PRIM).is_empty());
    }

    #[test]
    fn latent_prim_fires_at_divergent_call_site() {
        let f = kernel_findings_inter(HIDDEN_PRIM);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "divergent-sync");
        assert_eq!(f[0].line, Some(7));
        assert!(f[0].message.contains("via `full_ballot`"), "{f:?}");
    }

    const HIDDEN_FETCH: &str = "\
fn drain_one(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
    pool.fetch_sanitized(san)\n\
}\n\
pub fn k(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
    let t = drain_one(pool, san);\n\
    pool.read_cursor_unsync(san) + t\n\
}\n";

    #[test]
    fn pool_race_through_helper_needs_summaries() {
        assert!(kernel_findings(HIDDEN_FETCH).is_empty());
        let f = kernel_findings_inter(HIDDEN_FETCH);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "pool-race");
        assert_eq!(f[0].line, Some(6));
    }

    #[test]
    fn helper_barrier_at_exit_clears_caller_state() {
        let src = "\
fn drain_and_sync(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
    let t = pool.fetch_sanitized(san);\n\
    san.block_barrier();\n\
    t\n\
}\n\
pub fn k(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
    let t = drain_and_sync(pool, san);\n\
    pool.read_cursor_unsync(san) + t\n\
}\n";
        assert!(kernel_findings_inter(src).is_empty());
    }

    #[test]
    fn divergent_helper_return_seeds_caller_divergence() {
        let src = "\
fn pick(vals: &Lanes<u32>, lane: usize) -> u32 {\n\
    vals[lane]\n\
}\n\
pub fn k(ctr: &mut KernelCounters, san: &WarpSanitizer, mask: WarpMask, vals: &Lanes<u32>, pred: &Lanes<bool>) {\n\
    let v = pick(vals, 0);\n\
    if v > 1 {\n\
        ballot(ctr, san, FULL_MASK, pred);\n\
    }\n\
}\n";
        assert!(kernel_findings(src).is_empty(), "intra misses this");
        let f = kernel_findings_inter(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "divergent-sync");
        assert_eq!(f[0].line, Some(7));
    }

    #[test]
    fn helper_set_active_joins_to_unknown_not_stale() {
        // The helper re-declares; the caller's old declaration must not
        // produce a stale-mask finding afterwards.
        let src = "\
fn redeclare(san: &WarpSanitizer, m: u32) {\n\
    san.set_active(m);\n\
}\n\
pub fn k(ctr: &mut KernelCounters, san: &WarpSanitizer, mask: WarpMask, pred: &Lanes<bool>) {\n\
    san.set_active(mask);\n\
    redeclare(san, mask);\n\
    reduce_count(ctr, san, mask, pred);\n\
}\n";
        assert!(kernel_findings_inter(src).is_empty());
    }
}
