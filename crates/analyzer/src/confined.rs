//! Path-aware repo-invariant rules, migrated from the old textual lint.
//!
//! These run on the whole token stream of each file — including test
//! modules, matching the old lint's behavior — and use the lexer's
//! comment/string stripping instead of per-line `split("//")`, so a
//! `SeqCst` in a string literal or a `.launch(` in a doc comment can no
//! longer confuse them. Finding messages are kept byte-identical to the
//! textual rules they replace so CI diffs stay readable.

use crate::analysis::RawFinding;
use crate::cfg::extract_calls_spanned;
use crate::lex::Tok;

/// Run every file-level rule. `file` is the path label used both for
/// reporting and for the allow-lists (component checks on `/`-separated
/// paths).
pub fn check_file(file: &str, toks: &[Tok]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    out.extend(check_no_seqcst(toks));
    out.extend(check_launch_merges(toks));
    out.extend(check_launch_confined(file, toks));
    out.extend(check_prof_confined(file, toks));
    out
}

/// Does the normalized path have `name` as a component?
fn has_component(file: &str, name: &str) -> bool {
    file.replace('\\', "/").split('/').any(|c| c == name)
}

fn ends_with_path(file: &str, suffix: &str) -> bool {
    file.replace('\\', "/").ends_with(suffix)
}

/// No `SeqCst` atomic orderings: the device model is Relaxed counters plus
/// Acquire/Release hand-off by design. One finding per source line.
fn check_no_seqcst(toks: &[Tok]) -> Vec<RawFinding> {
    let mut out: Vec<RawFinding> = Vec::new();
    for t in toks {
        if t.is_ident("SeqCst") {
            if out.last().is_some_and(|f| f.line == Some(t.line)) {
                continue;
            }
            out.push(RawFinding {
                line: Some(t.line),
                col: Some(t.col),
                rule: "no-seqcst",
                message: "SeqCst ordering is banned (use Relaxed or \
                          Acquire/Release and document why)"
                    .to_string(),
            });
        }
    }
    out
}

/// A file that calls `Device::launch` must also merge `KernelCounters`.
/// The definition site itself (`fn launch`) is exempt.
fn check_launch_merges(toks: &[Tok]) -> Vec<RawFinding> {
    let calls = extract_calls_spanned(toks);
    let calls_launch = calls.iter().any(|(c, _)| c.is_method && c.name == "launch");
    let merges = calls.iter().any(|(c, _)| c.is_method && c.name == "merge");
    let defines_launch = toks
        .windows(2)
        .any(|w| w[0].is_ident("fn") && w[1].is_ident("launch"));
    if calls_launch && !merges && !defines_launch {
        vec![RawFinding {
            line: None,
            col: None,
            rule: "launch-merges-counters",
            message: "calls Device::launch but never merges the per-block \
                      KernelCounters"
                .to_string(),
        }]
    } else {
        Vec::new()
    }
}

/// Direct device launches are confined to `crates/simt` and the engine's
/// runtime module; everything else goes through the runtime layer.
fn check_launch_confined(file: &str, toks: &[Tok]) -> Vec<RawFinding> {
    if has_component(file, "simt") || ends_with_path(file, "engine/src/runtime.rs") {
        return Vec::new();
    }
    extract_calls_spanned(toks)
        .iter()
        .filter(|(c, _)| c.is_method && (c.name == "launch" || c.name == "launch_blocks"))
        .map(|(c, _)| RawFinding {
            line: Some(c.line),
            col: Some(c.col),
            rule: "launch-confined",
            message: "direct device launch outside crates/simt and the engine \
                      runtime module (go through \
                      spawn_kernel/spawn_estimate/run_engine)"
                .to_string(),
        })
        .collect()
}

/// Counter-board reads are confined to `crates/simt`, `crates/prof`, and
/// the engine's runtime module; everything else consumes the attributed
/// reports.
fn check_prof_confined(file: &str, toks: &[Tok]) -> Vec<RawFinding> {
    const BOARD_READS: &[&str] = &["stream_counters", "device_counters", "take_device_counters"];
    if has_component(file, "simt")
        || has_component(file, "prof")
        || ends_with_path(file, "engine/src/runtime.rs")
    {
        return Vec::new();
    }
    extract_calls_spanned(toks)
        .iter()
        .filter(|(c, _)| c.is_method && BOARD_READS.contains(&c.name.as_str()))
        .map(|(c, _)| RawFinding {
            line: Some(c.line),
            col: Some(c.col),
            rule: "prof-confined",
            message: "direct counter-board read outside crates/simt, \
                      crates/prof, and the engine runtime module (consume \
                      ProfReport / EngineReport instead)"
                .to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn findings(file: &str, src: &str) -> Vec<String> {
        check_file(file, &lex(src))
            .into_iter()
            .map(|f| format!("{}:{:?}", f.rule, f.line))
            .collect()
    }

    #[test]
    fn seqcst_flagged_with_line_but_not_in_comments_or_strings() {
        let src =
            "// SeqCst would be wrong\nlet y = b.load(Ordering::SeqCst);\nlet s = \"SeqCst\";\n";
        let f = findings("f.rs", src);
        assert_eq!(f, vec!["no-seqcst:Some(2)"]);
    }

    #[test]
    fn launch_without_merge_flagged_and_definition_exempt() {
        assert_eq!(
            findings(
                "crates/simt/src/x.rs",
                "let out = device.launch(|b| run(b));"
            ),
            vec!["launch-merges-counters:None"]
        );
        assert!(findings(
            "crates/simt/src/x.rs",
            "pub fn launch(&self) {}\nlet out = d.launch(f);"
        )
        .is_empty());
        assert!(findings(
            "crates/simt/src/x.rs",
            "let out = d.launch(f);\nctr.merge(&out[0]);"
        )
        .is_empty());
    }

    #[test]
    fn launch_confined_respects_allowlist() {
        let src = "let out = device.launch_blocks(0..4, |b| run(b));\nc.merge(&out[0]);";
        assert!(findings("crates/simt/src/runtime.rs", src).is_empty());
        assert!(findings("crates/engine/src/runtime.rs", src).is_empty());
        let f = findings("crates/core/src/builder.rs", src);
        assert_eq!(f, vec!["launch-confined:Some(1)"]);
    }

    #[test]
    fn launch_in_comment_not_flagged() {
        assert!(findings(
            "crates/core/src/builder.rs",
            "// call device.launch(body) through the runtime instead\n"
        )
        .is_empty());
    }

    #[test]
    fn board_reads_confined_to_simt_prof_and_engine_runtime() {
        let src = "let c = rt.stream_counters(0, 0);\nlet v = rt.take_device_counters();";
        assert!(findings("crates/prof/src/lib.rs", src).is_empty());
        assert!(findings("crates/simt/src/runtime.rs", src).is_empty());
        assert!(findings("crates/engine/src/runtime.rs", src).is_empty());
        let f = findings("crates/core/src/builder.rs", src);
        assert_eq!(f, vec!["prof-confined:Some(1)", "prof-confined:Some(2)"]);
    }
}
