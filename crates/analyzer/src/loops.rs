//! Loop structure over the statement-level CFG.
//!
//! The CFG's guard stacks cannot distinguish loops from conditionals
//! (`while` bodies carry a plain [`Guard::Cond`], `loop {}` bodies carry
//! no extra guard at all), so loop structure is recovered the classic way:
//! a DFS from the entry node finds **back edges** (an edge `u → v` with
//! `v` still on the DFS stack), and each back edge's **natural loop** is
//! the header `v` plus every node that reaches the latch `u` without
//! passing through `v` (reverse reachability over predecessors).
//!
//! On top of the node sets this module derives what the cost rules need:
//! per-node nesting depth (how many natural loops contain the node), the
//! innermost loop containing a node, and per-loop *defined* variable sets
//! (loop-pattern bindings plus assignment/let targets inside the body) so
//! a rule can ask whether an expression is **invariant** with respect to a
//! given loop.

use std::collections::BTreeSet;

use crate::cfg::{Action, Cfg, Guard};
use crate::lex::{Tok, TokKind};

/// One natural loop discovered from a back edge.
#[derive(Debug)]
pub struct Loop {
    /// The back edge's target: the single entry node of the loop.
    pub header: usize,
    /// Every node in the natural loop, header included.
    pub body: BTreeSet<usize>,
    /// Variables defined inside the loop: this loop's own iteration
    /// bindings plus every let/assignment target in the body. Outer
    /// loops' bindings are *not* included — they are invariant here.
    pub defined: BTreeSet<String>,
}

/// Loop structure of one function's CFG.
#[derive(Debug, Default)]
pub struct Loops {
    pub loops: Vec<Loop>,
    /// Per-node nesting depth: the number of natural loops containing the
    /// node (0 = straight-line code).
    pub depth: Vec<u32>,
}

impl Loops {
    /// Index of the innermost (smallest-body) loop containing `node`.
    pub fn innermost(&self, node: usize) -> Option<usize> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.body.contains(&node))
            .min_by_key(|(_, l)| l.body.len())
            .map(|(i, _)| i)
    }

    /// Maximum nesting depth anywhere in the function.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Is the token slice invariant with respect to loop `idx` — no
    /// identifier it reads is (re)defined inside that loop?
    pub fn invariant_in(&self, idx: usize, toks: &[Tok]) -> bool {
        let defined = &self.loops[idx].defined;
        toks.iter()
            .filter(|t| t.kind == TokKind::Ident)
            .all(|t| !defined.contains(&t.text))
    }
}

/// Find every natural loop of `cfg` and the derived per-node depths.
pub fn find_loops(cfg: &Cfg) -> Loops {
    let n = cfg.nodes.len();
    if n == 0 {
        return Loops::default();
    }
    let back_edges = find_back_edges(cfg);
    let preds = cfg.preds();

    let mut loops: Vec<Loop> = Vec::new();
    for (latch, header) in back_edges {
        let body = natural_loop(&preds, latch, header);
        // Two back edges can share a header (e.g. `continue` + fallthrough);
        // merge their node sets into one loop.
        if let Some(l) = loops.iter_mut().find(|l| l.header == header) {
            l.body.extend(body);
        } else {
            loops.push(Loop {
                header,
                body,
                defined: BTreeSet::new(),
            });
        }
    }

    let mut depth = vec![0u32; n];
    for l in &loops {
        for &node in &l.body {
            depth[node] += 1;
        }
    }

    // A loop's *own* guards are those appearing on body nodes but not on
    // the header (the header still carries only the enclosing stack);
    // their `for` bindings belong to this loop, while an outer loop's
    // bindings stay invariant here.
    for l in &mut loops {
        let header_guards: BTreeSet<usize> = cfg.nodes[l.header].guards.iter().copied().collect();
        for &node in &l.body {
            for a in &cfg.nodes[node].actions {
                if let Action::Def { names, .. } = a {
                    l.defined.extend(names.iter().cloned());
                }
            }
            for &g in &cfg.nodes[node].guards {
                if header_guards.contains(&g) {
                    continue;
                }
                if let Guard::Loop { bindings, .. } = &cfg.guards[g] {
                    l.defined.extend(bindings.iter().cloned());
                }
            }
        }
    }

    Loops { loops, depth }
}

/// Back edges `(u, v)` of a DFS from node 0: edges whose target is still
/// on the DFS stack. Iterative to keep deep CFGs off the call stack.
fn find_back_edges(cfg: &Cfg) -> Vec<(usize, usize)> {
    let n = cfg.nodes.len();
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut out = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some(&mut (node, ref mut next)) = stack.last_mut() {
        if *next < cfg.nodes[node].succs.len() {
            let s = cfg.nodes[node].succs[*next];
            *next += 1;
            match state[s] {
                0 => {
                    state[s] = 1;
                    stack.push((s, 0));
                }
                1 => out.push((node, s)),
                _ => {}
            }
        } else {
            state[node] = 2;
            stack.pop();
        }
    }
    out
}

/// The natural loop of back edge `latch → header`: header plus every node
/// that reaches the latch over predecessor edges without passing through
/// the header.
fn natural_loop(preds: &[Vec<usize>], latch: usize, header: usize) -> BTreeSet<usize> {
    let mut body = BTreeSet::from([header, latch]);
    let mut work = vec![latch];
    while let Some(n) = work.pop() {
        if n == header {
            continue;
        }
        for &p in &preds[n] {
            if body.insert(p) {
                work.push(p);
            }
        }
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower;
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn loops_of(src: &str) -> (Cfg, Loops) {
        let fns = parse_file(&lex(src));
        let cfg = lower(&fns[0].body);
        let l = find_loops(&cfg);
        (cfg, l)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let (_, l) = loops_of("fn f() { a(); b(); }");
        assert!(l.loops.is_empty());
        assert_eq!(l.max_depth(), 0);
    }

    #[test]
    fn for_while_and_loop_are_all_detected() {
        for src in [
            "fn f() { for i in 0..4 { body(i); } }",
            "fn f(mut i: u32) { while i > 0 { body(i); i -= 1; } }",
            "fn f() { loop { body(); if done() { break; } } }",
        ] {
            let (_, l) = loops_of(src);
            assert_eq!(l.loops.len(), 1, "{src}");
            assert_eq!(l.max_depth(), 1, "{src}");
        }
    }

    #[test]
    fn if_does_not_create_a_loop() {
        let (_, l) = loops_of("fn f(c: bool) { if c { a(); } else { b(); } }");
        assert!(l.loops.is_empty());
    }

    #[test]
    fn nesting_depth_counts_containing_loops() {
        let (cfg, l) = loops_of("fn f() { for i in 0..4 { for j in 0..4 { body(i, j); } } }");
        assert_eq!(l.loops.len(), 2);
        assert_eq!(l.max_depth(), 2);
        // The node holding body() is at depth 2 and its innermost loop is
        // the smaller of the two.
        let body_node = cfg
            .nodes
            .iter()
            .position(|n| {
                n.actions
                    .iter()
                    .any(|a| matches!(a, Action::Call(c) if c.name == "body"))
            })
            .unwrap();
        assert_eq!(l.depth[body_node], 2);
        let inner = l.innermost(body_node).unwrap();
        let outer = (0..2).find(|&i| i != inner).unwrap();
        assert!(l.loops[inner].body.len() < l.loops[outer].body.len());
    }

    #[test]
    fn inner_loop_defined_excludes_outer_bindings() {
        let (cfg, l) =
            loops_of("fn f(g: &G) { for u in 0..4 { for v in 0..4 { probe(g, u, v); } } }");
        let probe_node = cfg
            .nodes
            .iter()
            .position(|n| {
                n.actions
                    .iter()
                    .any(|a| matches!(a, Action::Call(c) if c.name == "probe"))
            })
            .unwrap();
        let inner = l.innermost(probe_node).unwrap();
        let d = &l.loops[inner].defined;
        assert!(d.contains("v"), "{d:?}");
        assert!(!d.contains("u"), "outer binding must stay invariant: {d:?}");
    }

    #[test]
    fn assignments_in_body_are_loop_defined() {
        let (_, l) = loops_of("fn f() { let mut cur = seed(); loop { cur = step(cur); } }");
        assert_eq!(l.loops.len(), 1);
        assert!(l.loops[0].defined.contains("cur"));
    }

    #[test]
    fn invariance_query_reads_defined_set() {
        let (cfg, l) = loops_of("fn f(u: u32) { for v in 0..4 { probe(u, v); } }");
        let node = cfg
            .nodes
            .iter()
            .position(|n| !n.actions.is_empty() && l.depth[cfg.nodes.len() - 1] == 0)
            .unwrap_or(0);
        let _ = node;
        let toks = lex("u");
        assert!(l.invariant_in(0, &toks));
        let toks = lex("v");
        assert!(!l.invariant_in(0, &toks));
    }

    #[test]
    fn continue_produces_one_merged_loop() {
        let (_, l) = loops_of("fn f() { for i in 0..8 { if skip(i) { continue; } body(i); } }");
        assert_eq!(l.loops.len(), 1, "continue back edge merges with latch");
    }
}
