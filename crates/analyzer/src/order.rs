//! Rules `nondet-order` and `float-reduce-order`: iteration-order
//! nondeterminism flowing into estimates, reports, and serialized output.
//!
//! gSWORD's headline guarantee is that estimates are bit-identical across
//! device×stream topologies. Two things silently break that guarantee:
//!
//! * **`nondet-order`** — `HashMap`/`HashSet` iteration order is
//!   randomized per process. An early `return` inside such a loop, or a
//!   sequence (`push` / `push_str` / `extend`) built in that order,
//!   produces run-to-run-varying output.
//! * **`float-reduce-order`** — f64 addition is not associative, so a
//!   `+=` accumulation (or an estimate `merge`) performed in unordered
//!   iteration order yields different bits per run and per shard count.
//!
//! The escape hatch is the *sorted-snapshot* idiom: collect into a `Vec`,
//! sort it, then iterate — a receiver that is visibly sorted (any
//! `.sort*()` call on it) is exempt, as are `BTreeMap`/`BTreeSet`
//! receivers. The checks walk the statement tree (not the CFG) because
//! assignment operators and spans live there; taint is a small fixpoint so
//! unordered data tracked through `let` chains is still seen at the sink.

use std::collections::HashSet;

use crate::analysis::RawFinding;
use crate::callgraph::Summaries;
use crate::cfg::extract_calls;
use crate::lex::{Tok, TokKind};
use crate::parse::{Block, FnDef, Stmt};

/// Methods that exist (essentially) only on hash maps/sets — unordered on
/// any receiver that is not visibly ordered.
const MAP_ONLY_ITERS: &[&str] = &["keys", "values", "values_mut", "into_keys", "into_values"];

/// Generic iteration methods — unordered only when the receiver is a
/// known hash container.
const GENERIC_ITERS: &[&str] = &["iter", "iter_mut", "into_iter", "drain"];

/// Order-sensitive sequence sinks.
const SEQ_SINKS: &[&str] = &["push", "push_str", "extend"];

/// Estimate-merge sinks: f64 accumulation whose result must not depend on
/// visit order (the `EngineReport::merge_devices` family).
const MERGE_SINKS: &[&str] = &["merge", "merge_devices", "merge_streams"];

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ORDERED_TYPES: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap"];
const FLOAT_TYPES: &[&str] = &["f32", "f64"];

/// Name-level environment for one function body.
#[derive(Default)]
struct Env {
    /// Locals/params of hash-container type.
    hash_vars: HashSet<String>,
    /// Locals of visibly ordered container type.
    ordered: HashSet<String>,
    /// Locals holding data derived from unordered iteration.
    tainted: HashSet<String>,
    /// Receivers of a `.sort*()` call anywhere in the body.
    sorted: HashSet<String>,
    /// Locals/params of float type.
    floats: HashSet<String>,
}

impl Env {
    fn build(f: &FnDef, sums: &Summaries) -> Env {
        let mut env = Env::default();
        for p in &f.params {
            if HASH_TYPES.iter().any(|t| p.ty.contains(t)) {
                env.hash_vars.insert(p.name.clone());
            }
            if ORDERED_TYPES.iter().any(|t| p.ty.contains(t)) {
                env.ordered.insert(p.name.clone());
            }
            if FLOAT_TYPES.iter().any(|t| p.ty.contains(t)) {
                env.floats.insert(p.name.clone());
            }
        }
        // Sorted receivers first: they exempt taint introduced anywhere.
        collect_sorted(&f.body, &mut env.sorted);
        // Taint through `let` chains needs a fixpoint.
        loop {
            let before = (
                env.hash_vars.len(),
                env.ordered.len(),
                env.tainted.len(),
                env.floats.len(),
            );
            scan_block(&f.body, &mut env, sums);
            if (
                env.hash_vars.len(),
                env.ordered.len(),
                env.tainted.len(),
                env.floats.len(),
            ) == before
            {
                break;
            }
        }
        env
    }

    fn first_seg(recv: &str) -> &str {
        recv.split_whitespace().next().unwrap_or(recv)
    }

    /// Is this receiver chain visibly order-safe (sorted or ordered type)?
    fn recv_ordered(&self, recv: &str) -> bool {
        let base = Env::first_seg(recv);
        self.sorted.contains(base) || self.ordered.contains(base)
    }

    /// Does evaluating this expression visit or read hash-ordered data?
    fn expr_unordered(&self, toks: &[Tok], sums: &Summaries) -> bool {
        for c in extract_calls(toks) {
            if c.is_method {
                let recv = c.recv.as_deref().unwrap_or("");
                if self.recv_ordered(recv) {
                    continue;
                }
                let base = Env::first_seg(recv);
                if MAP_ONLY_ITERS.contains(&c.name.as_str()) {
                    return true;
                }
                if GENERIC_ITERS.contains(&c.name.as_str())
                    && (self.hash_vars.contains(base) || self.tainted.contains(base))
                {
                    return true;
                }
            } else if !crate::callgraph::opaque_name(&c.name)
                && sums.get(&c.name).is_some_and(|s| s.unordered_out)
            {
                return true;
            }
        }
        // Iterating (or borrowing) a hash container / tainted value
        // directly, with no sort in sight.
        toks.iter().any(|t| {
            t.kind == TokKind::Ident
                && (self.hash_vars.contains(&t.text)
                    || (self.tainted.contains(&t.text) && !self.sorted.contains(&t.text)))
        })
    }

    fn is_floaty(&self, target: &str, value: &[Tok]) -> bool {
        self.floats.contains(target)
            || value.iter().any(|t| {
                is_float_lit(t)
                    || (t.kind == TokKind::Ident
                        && (FLOAT_TYPES.contains(&t.text.as_str())
                            || self.floats.contains(&t.text)))
            })
    }
}

fn is_float_lit(t: &Tok) -> bool {
    t.kind == TokKind::Lit
        && t.text.contains('.')
        && t.text.chars().next().is_some_and(|c| c.is_ascii_digit())
}

fn ty_or_init_names(ty: &[Tok], init: &[Tok], wanted: &[&str]) -> bool {
    ty.iter()
        .chain(init.iter())
        .any(|t| t.kind == TokKind::Ident && wanted.contains(&t.text.as_str()))
}

/// One env-growing pass over a block (called to fixpoint).
fn scan_block(b: &Block, env: &mut Env, sums: &Summaries) {
    for s in &b.stmts {
        match s {
            Stmt::Let {
                names,
                ty,
                init,
                else_block,
                ..
            } => {
                if ty_or_init_names(ty, init, HASH_TYPES) {
                    env.hash_vars.extend(names.iter().cloned());
                }
                if ty_or_init_names(ty, init, ORDERED_TYPES) {
                    env.ordered.extend(names.iter().cloned());
                }
                if ty_or_init_names(ty, init, FLOAT_TYPES) || init.iter().any(is_float_lit) {
                    env.floats.extend(names.iter().cloned());
                }
                if env.expr_unordered(init, sums) {
                    for n in names {
                        if !env.sorted.contains(n) {
                            env.tainted.insert(n.clone());
                        }
                    }
                }
                if let Some(eb) = else_block {
                    scan_block(eb, env, sums);
                }
            }
            Stmt::Assign { target, value, .. }
                if env.expr_unordered(value, sums) && !env.sorted.contains(target) =>
            {
                env.tainted.insert(target.clone());
            }
            Stmt::If { then_b, else_b, .. } => {
                scan_block(then_b, env, sums);
                if let Some(eb) = else_b {
                    scan_block(eb, env, sums);
                }
            }
            Stmt::While { body, .. } | Stmt::Loop { body } => scan_block(body, env, sums),
            Stmt::For {
                bindings,
                iter,
                body,
            } => {
                // Bindings of an unordered loop are themselves
                // order-dependent values.
                if env.expr_unordered(iter, sums) {
                    env.tainted.extend(bindings.iter().cloned());
                }
                scan_block(body, env, sums);
            }
            Stmt::Match { arms, .. } => {
                for (_, body) in arms {
                    scan_block(body, env, sums);
                }
            }
            Stmt::Block(inner) | Stmt::Unsafe { body: inner, .. } => scan_block(inner, env, sums),
            _ => {}
        }
    }
}

/// Record every receiver of a `.sort*()` call, recursively.
fn collect_sorted(b: &Block, sorted: &mut HashSet<String>) {
    crate::parse::visit_exprs(b, &mut |toks| {
        for c in extract_calls(toks) {
            if c.is_method && c.name.starts_with("sort") {
                if let Some(recv) = &c.recv {
                    sorted.insert(Env::first_seg(recv).to_string());
                }
            }
        }
    });
}

/// Run both order rules on one (non-test) function.
pub fn check_fn(f: &FnDef, sums: &Summaries) -> Vec<RawFinding> {
    if f.in_test {
        return Vec::new();
    }
    let env = Env::build(f, sums);
    let mut out = Vec::new();
    walk(&f.body, &env, sums, false, &mut out);
    out
}

/// Recursive findings walk; `in_unordered` is true inside any loop whose
/// iteration order comes from a hash container.
fn walk(b: &Block, env: &Env, sums: &Summaries, in_unordered: bool, out: &mut Vec<RawFinding>) {
    for s in &b.stmts {
        match s {
            Stmt::For { iter, body, .. } => {
                let unordered = env.expr_unordered(iter, sums);
                walk(body, env, sums, in_unordered || unordered, out);
            }
            Stmt::While { body, .. } | Stmt::Loop { body } => {
                walk(body, env, sums, in_unordered, out)
            }
            Stmt::If { then_b, else_b, .. } => {
                walk(then_b, env, sums, in_unordered, out);
                if let Some(eb) = else_b {
                    walk(eb, env, sums, in_unordered, out);
                }
            }
            Stmt::Match { arms, .. } => {
                for (_, body) in arms {
                    walk(body, env, sums, in_unordered, out);
                }
            }
            Stmt::Block(inner) | Stmt::Unsafe { body: inner, .. } => {
                walk(inner, env, sums, in_unordered, out)
            }
            Stmt::Let {
                else_block: Some(eb),
                ..
            } => walk(eb, env, sums, in_unordered, out),
            Stmt::Assign {
                target,
                op,
                value,
                line,
                col,
            } if in_unordered && op == "+=" && env.is_floaty(target, value) => {
                out.push(RawFinding {
                    line: Some(*line),
                    col: Some(*col),
                    rule: "float-reduce-order",
                    message: format!(
                        "float accumulation into `{target}` inside an unordered \
                         HashMap/HashSet iteration — the sum's bits depend on \
                         iteration order; iterate a sorted snapshot instead"
                    ),
                });
            }
            Stmt::Return(toks) if in_unordered && !toks.is_empty() => {
                let (line, col) = toks
                    .first()
                    .map(|t| (Some(t.line), Some(t.col)))
                    .unwrap_or((None, None));
                out.push(RawFinding {
                    line,
                    col,
                    rule: "nondet-order",
                    message: "early return inside an unordered HashMap/HashSet \
                              iteration — which element is reported depends on \
                              iteration order; sort the entries before iterating"
                        .to_string(),
                });
            }
            Stmt::Expr(toks) if in_unordered => {
                for c in extract_calls(toks) {
                    if c.is_method && SEQ_SINKS.contains(&c.name.as_str()) {
                        let recv = c.recv.as_deref().unwrap_or("");
                        if !env.recv_ordered(recv) {
                            out.push(RawFinding {
                                line: Some(c.line),
                                col: Some(c.col),
                                rule: "nondet-order",
                                message: format!(
                                    "sequence `{}` is built in HashMap/HashSet \
                                     iteration order — output varies per run; \
                                     sort the entries first or sort the result",
                                    Env::first_seg(recv)
                                ),
                            });
                        }
                    }
                    if MERGE_SINKS.contains(&c.name.as_str()) {
                        out.push(RawFinding {
                            line: Some(c.line),
                            col: Some(c.col),
                            rule: "float-reduce-order",
                            message: format!(
                                "estimate merge `{}` inside an unordered \
                                 iteration — f64 accumulation order varies with \
                                 shard/device count; merge in canonical (sorted) \
                                 order",
                                c.name
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

/// Summary hook: does this function's return value depend on hash
/// iteration order?
pub fn unordered_out(f: &FnDef, sums: &Summaries) -> bool {
    if f.in_test {
        return false;
    }
    let env = Env::build(f, sums);
    crate::analysis::return_exprs(&f.body)
        .iter()
        .any(|e| env.expr_unordered(e, sums))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn findings(src: &str) -> Vec<RawFinding> {
        let fns = parse_file(&lex(src));
        let sums = Summaries::build(&fns);
        fns.iter().flat_map(|f| check_fn(f, &sums)).collect()
    }

    #[test]
    fn early_return_under_hash_loop_is_nondet_order() {
        let src = "pub fn validate(spans: &[Span]) -> Result<(), String> {\n\
            let mut by_track: HashMap<Track, Vec<u64>> = HashMap::new();\n\
            for s in spans { by_track.entry(s.track).or_default().push(s.t); }\n\
            for (track, ts) in by_track {\n\
                if ts.len() > 1 {\n\
                    return Err(format!(\"overlap on {track:?}\"));\n\
                }\n\
            }\n\
            Ok(())\n\
        }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "nondet-order");
        assert_eq!(f[0].line, Some(6));
        assert!(f[0].col.is_some());
    }

    #[test]
    fn float_accumulation_under_hash_loop_flagged() {
        let src = "pub fn total(m: &HashMap<u32, f64>) -> f64 {\n\
            let mut t: f64 = 0.0;\n\
            for v in m.values() {\n\
                t += v;\n\
            }\n\
            t\n\
        }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "float-reduce-order");
        assert_eq!(f[0].line, Some(4));
    }

    #[test]
    fn integer_accumulation_under_hash_loop_is_clean() {
        let src = "pub fn count(m: &HashMap<u32, u64>) -> u64 {\n\
            let mut t: u64 = 0;\n\
            for v in m.values() {\n\
                t += v;\n\
            }\n\
            t\n\
        }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn sorted_snapshot_idiom_is_clean() {
        let src = "pub fn report(m: &HashMap<u32, f64>) -> f64 {\n\
            let mut entries: Vec<(u32, f64)> = m.iter().map(|(k, v)| (*k, *v)).collect();\n\
            entries.sort_by_key(|e| e.0);\n\
            let mut t: f64 = 0.0;\n\
            for e in entries {\n\
                t += e.1;\n\
            }\n\
            t\n\
        }";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn push_under_hash_loop_flagged_unless_sorted_after() {
        let bad = "pub fn names(m: &HashMap<u32, String>) -> Vec<String> {\n\
            let mut out = Vec::new();\n\
            for v in m.values() {\n\
                out.push(v.clone());\n\
            }\n\
            out\n\
        }";
        let f = findings(bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "nondet-order");
        let fixed = "pub fn names(m: &HashMap<u32, String>) -> Vec<String> {\n\
            let mut out = Vec::new();\n\
            for v in m.values() {\n\
                out.push(v.clone());\n\
            }\n\
            out.sort();\n\
            out\n\
        }";
        assert!(findings(fixed).is_empty());
    }

    #[test]
    fn btree_iteration_is_ordered() {
        let src = "pub fn total(m: &BTreeMap<u32, f64>) -> f64 {\n\
            let mut t: f64 = 0.0;\n\
            for v in m.values() {\n\
                t += v;\n\
            }\n\
            t\n\
        }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn merge_under_hash_loop_is_float_reduce_order() {
        let src = "pub fn combine(parts: &HashMap<u32, EngineReport>, acc: &mut EngineReport) {\n\
            for p in parts.values() {\n\
                acc.merge_devices(p);\n\
            }\n\
        }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "float-reduce-order");
        assert!(f[0].message.contains("merge_devices"), "{f:?}");
    }

    #[test]
    fn taint_flows_through_let_chain() {
        let src = "pub fn relay(m: &HashMap<u32, u32>) -> u32 {\n\
            let ks: Vec<u32> = m.keys().cloned().collect();\n\
            let picked = ks;\n\
            for k in picked {\n\
                return k;\n\
            }\n\
            0\n\
        }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "nondet-order");
    }

    #[test]
    fn test_functions_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n\
            fn helper(m: &HashMap<u32, u32>) -> u32 {\n\
                for k in m.keys() { return *k; }\n\
                0\n\
            }\n\
        }";
        assert!(findings(src).is_empty());
    }
}
