//! Call graph and per-function summaries — the interprocedural layer.
//!
//! The analyses in [`crate::analysis`], [`crate::order`], and
//! [`crate::blocking`] are statement-level and would stop at call
//! boundaries. This module runs them in *summary mode* over every parsed
//! function in the corpus and iterates to a fixpoint, producing one
//! [`FnSummary`] per function name. The per-file rule passes then consult
//! the summaries at each call site, so a violation hidden behind a helper
//! function (a full-mask primitive, an entry-exposed pool access, a
//! blocking drain, a HashMap-ordered return value) is seen at the caller.
//!
//! Summaries are keyed by bare function name: the parser does not resolve
//! paths or `impl` blocks, so two methods sharing a name share a summary.
//! Joins are conservative (boolean OR, lattice max), which can only make
//! the analysis flag more, never less — name collisions degrade to noise
//! that a suppression or rename resolves, not to a missed violation.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::cfg::extract_calls;
use crate::parse::{visit_exprs, FnDef};

/// Pool-state constants mirrored from the analysis lattice
/// (`Clear < Atomic < Plain`; 0 is bottom / untouched).
pub const SUM_POOL_CLEAR: u8 = 1;

/// Ubiquitous std-trait method names that are never consulted in the
/// summary table. Summaries are keyed by bare name, and names like `drop`
/// or `clone` have dozens of unrelated implementations plus std
/// fallbacks; one effectful impl (e.g. `Drop for RuntimeScope`, which
/// drains the pool) would otherwise taint every call to `drop(x)` in the
/// corpus. The cost is precision at explicit `drop(scope)` sites — the
/// drain-on-drop hazard inside worker jobs is still caught by the
/// `ScopeSync` construction check in [`crate::blocking`].
pub fn opaque_name(name: &str) -> bool {
    const OPAQUE: &[&str] = &[
        "drop",
        "clone",
        "fmt",
        "default",
        "eq",
        "ne",
        "cmp",
        "partial_cmp",
        "hash",
        "next",
        "deref",
        "deref_mut",
        "from",
        "into",
        "index",
        "index_mut",
        "as_ref",
        "as_mut",
        "borrow",
        "borrow_mut",
        "to_string",
    ];
    OPAQUE.contains(&name)
}

/// What a call to this function does to its caller's analysis state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// The return value reads per-lane (divergent) data.
    pub divergent_out: bool,
    /// The return value is a per-lane container (`Lanes`-like).
    pub container_out: bool,
    /// Calls `set_active` somewhere — the caller's mask declaration is
    /// stale after the call (joined to Unknown, permissively).
    pub sets_active: bool,
    /// The return value depends on `HashMap`/`HashSet` iteration order.
    pub unordered_out: bool,
    /// Transitively reaches a blocking drain (`scope` / `wait_all` /
    /// `wait()` / `wait_report`) — must not run inside a pool worker job.
    pub blocks: bool,
    /// Performs an atomic pool access reachable from entry with no
    /// intervening `block_barrier` on some path.
    pub pool_atomic_entry: bool,
    /// Performs an unsynchronized cursor read reachable from entry with no
    /// intervening `block_barrier` on some path.
    pub pool_plain_entry: bool,
    /// Pool lattice state at exit (0 when the pool is never touched).
    pub pool_out: u8,
    /// Touches the block-shared pool at all (directly or transitively).
    pub pool_touched: bool,
    /// Warp primitives called with a full mask under no local divergence
    /// and no declaration — harmless where they are, violations when the
    /// call site is divergent. Sorted, deduplicated, capped.
    pub latent_prims: Vec<String>,
}

impl FnSummary {
    /// Conservative join for same-named functions and fixpoint rounds.
    fn join(&mut self, o: &FnSummary) {
        self.divergent_out |= o.divergent_out;
        self.container_out |= o.container_out;
        self.sets_active |= o.sets_active;
        self.unordered_out |= o.unordered_out;
        self.blocks |= o.blocks;
        self.pool_atomic_entry |= o.pool_atomic_entry;
        self.pool_plain_entry |= o.pool_plain_entry;
        self.pool_out = self.pool_out.max(o.pool_out);
        self.pool_touched |= o.pool_touched;
        for p in &o.latent_prims {
            if !self.latent_prims.contains(p) {
                self.latent_prims.push(p.clone());
            }
        }
        self.latent_prims.sort();
        self.latent_prims.truncate(8);
    }
}

/// The corpus-wide summary table.
#[derive(Debug, Default)]
pub struct Summaries {
    map: HashMap<String, FnSummary>,
}

impl Summaries {
    /// No summaries at all — every call is opaque. This is exactly the
    /// PR-4 intraprocedural behavior, kept for before/after comparison.
    pub fn empty() -> Summaries {
        Summaries::default()
    }

    pub fn get(&self, name: &str) -> Option<&FnSummary> {
        self.map.get(name)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Compute summaries for every non-test function by Jacobi iteration:
    /// each round re-summarizes all functions against the previous round's
    /// table, until the table stops changing. All summary lattices are
    /// finite and the transfer functions monotone, so this terminates; the
    /// round cap is a safety net for pathological corpora.
    pub fn build(fns: &[FnDef]) -> Summaries {
        let mut cur = Summaries::default();
        for _round in 0..12 {
            let mut next: HashMap<String, FnSummary> = HashMap::new();
            for f in fns.iter().filter(|f| !f.in_test) {
                let mut s = crate::analysis::flow_summary(f, &cur);
                s.unordered_out = crate::order::unordered_out(f, &cur);
                s.blocks = crate::blocking::blocks_out(f, &cur);
                next.entry(f.name.clone()).or_default().join(&s);
            }
            if next == cur.map {
                break;
            }
            cur.map = next;
        }
        cur
    }
}

/// The name-level call graph: caller → set of callees that are defined in
/// the corpus. Diagnostic/debug artifact; the rule passes consult
/// [`Summaries`] directly.
pub fn call_graph(fns: &[FnDef]) -> BTreeMap<String, BTreeSet<String>> {
    let defined: BTreeSet<&str> = fns.iter().map(|f| f.name.as_str()).collect();
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in fns {
        let entry = out.entry(f.name.clone()).or_default();
        visit_exprs(&f.body, &mut |toks| {
            for c in extract_calls(toks) {
                if c.name != f.name && defined.contains(c.name.as_str()) {
                    entry.insert(c.name.clone());
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn fns(src: &str) -> Vec<FnDef> {
        parse_file(&lex(src))
    }

    #[test]
    fn call_graph_links_defined_callees_only() {
        let f = fns("fn a() { b(); external(); }\nfn b() { }\n");
        let g = call_graph(&f);
        assert_eq!(g["a"], BTreeSet::from(["b".to_string()]));
        assert!(g["b"].is_empty());
    }

    #[test]
    fn summaries_propagate_blocking_transitively() {
        let f = fns("fn leaf(h: &Handle) { h.wait(); }\n\
             fn mid(h: &Handle) { leaf(h); }\n\
             fn top(h: &Handle) { mid(h); }\n");
        let s = Summaries::build(&f);
        assert!(s.get("leaf").unwrap().blocks);
        assert!(s.get("mid").unwrap().blocks);
        assert!(s.get("top").unwrap().blocks);
    }

    #[test]
    fn summaries_propagate_unordered_transitively() {
        let f = fns(
            "fn keys_of(m: &HashMap<u32, u32>) -> Vec<u32> { m.keys().cloned().collect() }\n\
             fn relay(m: &HashMap<u32, u32>) -> Vec<u32> { keys_of(m) }\n",
        );
        let s = Summaries::build(&f);
        assert!(s.get("keys_of").unwrap().unordered_out);
        assert!(s.get("relay").unwrap().unordered_out);
    }

    #[test]
    fn same_name_summaries_join_conservatively() {
        let f = fns("fn poll(h: &Handle) -> bool { h.ready() }\n\
             fn poll(h: &Handle) -> bool { h.wait(); true }\n");
        let s = Summaries::build(&f);
        assert!(
            s.get("poll").unwrap().blocks,
            "join must keep the worst case"
        );
    }

    #[test]
    fn test_functions_do_not_pollute_summaries() {
        let f = fns("#[cfg(test)]\nmod tests {\n  fn scope_it(h: &H) { h.wait(); }\n}\n");
        let s = Summaries::build(&f);
        assert!(s.get("scope_it").is_none());
    }
}
