//! Function extractor and statement-level parser.
//!
//! Turns the token stream of a Rust source file into a list of [`FnDef`]s,
//! each with its parameter list and a structured [`Block`] body. The parser
//! is deliberately partial: any statement it cannot classify becomes an
//! opaque [`Stmt::Expr`] whose call sites are still extracted, so analyses
//! degrade to conservatism rather than failing.

use crate::lex::{Tok, TokKind};

/// A function parameter: binding name plus normalized type text.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    /// Type tokens joined by single spaces, e.g. `& mut KernelCounters`.
    pub ty: String,
}

/// A parsed function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    pub line: u32,
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` module or carrying `#[test]`.
    pub in_test: bool,
    pub params: Vec<Param>,
    pub body: Block,
}

/// A `{ ... }` block: a sequence of statements.
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// One statement. Token slices keep their source lines.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let pat (: ty)? = init;` — `names` are the identifiers bound by the
    /// pattern; `else_block` is the let-else divergent arm if present.
    Let {
        names: Vec<String>,
        ty: Vec<Tok>,
        init: Vec<Tok>,
        else_block: Option<Block>,
        line: u32,
    },
    /// `target op= value;` for `=`, `+=`, `|=`, …
    Assign {
        /// Base variable of the assignment target (`s` for `s[lane] = …`,
        /// `weight_sum` for `self.weight_sum += …`).
        target: String,
        /// The assignment operator itself (`=`, `+=`, `|=`, …) — compound
        /// float accumulation (`+=`) is what `float-reduce-order` keys on.
        op: String,
        value: Vec<Tok>,
        line: u32,
        col: u32,
    },
    If {
        cond: Vec<Tok>,
        then_b: Block,
        else_b: Option<Block>,
    },
    While {
        cond: Vec<Tok>,
        body: Block,
    },
    Loop {
        body: Block,
    },
    For {
        /// Identifiers bound by the loop pattern.
        bindings: Vec<String>,
        iter: Vec<Tok>,
        body: Block,
    },
    Match {
        scrutinee: Vec<Tok>,
        /// (pattern bindings, arm body) per arm.
        arms: Vec<(Vec<String>, Block)>,
    },
    /// Bare `{ ... }`.
    Block(Block),
    /// `unsafe { ... }` statement block, with the `unsafe` keyword's
    /// position kept so the escape analysis can anchor findings.
    Unsafe {
        body: Block,
        line: u32,
        col: u32,
    },
    /// `return expr?;`
    Return(Vec<Tok>),
    /// `break expr?;`
    Break,
    /// `continue;`
    Continue,
    /// Anything else: expression statement, nested item, etc.
    Expr(Vec<Tok>),
}

/// Keywords that can never be pattern bindings.
const KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "if", "else", "while", "loop", "for", "in", "match", "return", "break",
    "continue", "fn", "pub", "self", "Self", "true", "false", "as", "move", "box", "_",
];

/// Parse every function in a lexed file.
pub fn parse_file(toks: &[Tok]) -> Vec<FnDef> {
    let mut out = Vec::new();
    scan_items(toks, false, &mut out);
    out
}

/// Recursive item-level scan: descends into `mod`/`impl`/`trait` bodies,
/// tracking whether we are inside test-only code.
fn scan_items(toks: &[Tok], in_test: bool, out: &mut Vec<FnDef>) {
    let mut i = 0;
    let mut is_pub = false;
    let mut attr_test = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("#") {
            // Attribute: slurp `[...]` (or `![...]`) and inspect it.
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_punct("!") {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct("[") {
                let end = matching(toks, j);
                let txt = join(&toks[j..=end.min(toks.len() - 1)]);
                if txt.contains("cfg ( test") || txt == "[ test ]" {
                    attr_test = true;
                }
                i = end + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("pub") {
            is_pub = true;
            i += 1;
            // Skip `(crate)` / `(super)` visibility qualifiers.
            if i < toks.len() && toks[i].is_punct("(") {
                i = matching(toks, i) + 1;
            }
            continue;
        }
        if t.is_ident("mod") {
            // `mod name;` or `mod name { ... }`
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct("{") {
                let end = matching(toks, j);
                scan_items(&toks[j + 1..end], in_test || attr_test, out);
                i = end + 1;
            } else {
                i = j + 1;
            }
            is_pub = false;
            attr_test = false;
            continue;
        }
        if t.is_ident("fn") {
            let (def, next) = parse_fn(toks, i, is_pub, in_test || attr_test);
            if let Some(def) = def {
                out.push(def);
            }
            i = next;
            is_pub = false;
            attr_test = false;
            continue;
        }
        if t.is_punct("{") {
            // impl / trait / enum body — recurse so methods are found.
            let end = matching(toks, i);
            scan_items(&toks[i + 1..end], in_test || attr_test, out);
            i = end + 1;
            is_pub = false;
            attr_test = false;
            continue;
        }
        if t.is_punct(";") {
            is_pub = false;
            attr_test = false;
        }
        i += 1;
    }
}

/// Parse a fn starting at the `fn` keyword. Returns the def (None if the
/// signature is malformed or has no body) and the index to resume scanning.
fn parse_fn(toks: &[Tok], at: usize, is_pub: bool, in_test: bool) -> (Option<FnDef>, usize) {
    let line = toks[at].line;
    let mut i = at + 1;
    let name = match toks.get(i) {
        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
        _ => return (None, at + 1),
    };
    i += 1;
    // Skip generics `<...>` (tracking `<`/`>` nesting; `>>` closes two).
    if i < toks.len() && toks[i].is_punct("<") {
        let mut depth = 0i32;
        while i < toks.len() {
            match toks[i].text.as_str() {
                "<" if toks[i].kind == TokKind::Punct => depth += 1,
                ">" if toks[i].kind == TokKind::Punct => depth -= 1,
                ">>" if toks[i].kind == TokKind::Punct => depth -= 2,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    if i >= toks.len() || !toks[i].is_punct("(") {
        return (None, i);
    }
    let pend = matching(toks, i);
    let params = parse_params(&toks[i + 1..pend]);
    i = pend + 1;
    // Return type + where clause: first top-level `{` starts the body; a
    // top-level `;` means no body (trait method decl).
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" if depth == 0 => return (None, i + 1),
                _ => {}
            }
        }
        i += 1;
    }
    if i >= toks.len() {
        return (None, i);
    }
    let bend = matching(toks, i);
    let body = parse_block(&toks[i + 1..bend.min(toks.len())]);
    (
        Some(FnDef {
            name,
            line,
            is_pub,
            in_test,
            params,
            body,
        }),
        bend + 1,
    )
}

/// Split the parameter token slice at top-level commas; each piece with a
/// top-level `:` becomes a Param (so `self`, `&mut self` are skipped).
fn parse_params(toks: &[Tok]) -> Vec<Param> {
    split_top(toks, ",")
        .into_iter()
        .filter_map(|piece| {
            let colon = find_top(piece, ":")?;
            let name = piece[..colon]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()))?
                .text
                .clone();
            Some(Param {
                name,
                ty: join(&piece[colon + 1..]),
            })
        })
        .collect()
}

/// Parse the statements of a block body (tokens between the braces).
pub fn parse_block(toks: &[Tok]) -> Block {
    let mut stmts = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct(";") {
            i += 1;
            continue;
        }
        if t.is_punct("#") {
            // Attribute on a statement: skip it.
            let j = i + 1;
            if j < toks.len() && toks[j].is_punct("[") {
                i = matching(toks, j) + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("let") {
            let (s, n) = parse_let(toks, i);
            stmts.push(s);
            i = n;
        } else if t.is_ident("if") {
            let (s, n) = parse_if(toks, i);
            stmts.push(s);
            i = n;
        } else if t.is_ident("while") {
            let hdr = scan_to_body(toks, i + 1);
            let end = matching(toks, hdr);
            stmts.push(Stmt::While {
                cond: toks[i + 1..hdr].to_vec(),
                body: parse_block(&toks[hdr + 1..end]),
            });
            i = end + 1;
        } else if t.is_ident("loop") {
            let hdr = scan_to_body(toks, i + 1);
            let end = matching(toks, hdr);
            stmts.push(Stmt::Loop {
                body: parse_block(&toks[hdr + 1..end]),
            });
            i = end + 1;
        } else if t.is_ident("for") {
            let (s, n) = parse_for(toks, i);
            stmts.push(s);
            i = n;
        } else if t.is_ident("match") {
            let (s, n) = parse_match(toks, i);
            stmts.push(s);
            i = n;
        } else if t.is_ident("unsafe") && toks.get(i + 1).is_some_and(|n| n.is_punct("{")) {
            let end = matching(toks, i + 1);
            stmts.push(Stmt::Unsafe {
                body: parse_block(&toks[i + 2..end]),
                line: t.line,
                col: t.col,
            });
            i = end + 1;
        } else if t.is_punct("{") {
            let end = matching(toks, i);
            stmts.push(Stmt::Block(parse_block(&toks[i + 1..end])));
            i = end + 1;
        } else if t.is_ident("return") {
            let (expr, n) = scan_stmt_end(toks, i + 1);
            stmts.push(Stmt::Return(expr.to_vec()));
            i = n;
        } else if t.is_ident("break") {
            let (_, n) = scan_stmt_end(toks, i + 1);
            stmts.push(Stmt::Break);
            i = n;
        } else if t.is_ident("continue") {
            let (_, n) = scan_stmt_end(toks, i + 1);
            stmts.push(Stmt::Continue);
            i = n;
        } else {
            let (expr, n) = scan_stmt_end(toks, i);
            stmts.push(classify_expr(expr));
            i = n;
        }
    }
    Block { stmts }
}

/// An expression statement is an Assign if it has a top-level assignment
/// operator, else an opaque Expr.
fn classify_expr(toks: &[Tok]) -> Stmt {
    const ASSIGN_OPS: &[&str] = &[
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
    ];
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            op if depth == 0 && ASSIGN_OPS.contains(&op) => {
                let target = assign_target(&toks[..i]);
                if let Some(target) = target {
                    return Stmt::Assign {
                        target,
                        op: t.text.clone(),
                        value: toks[i + 1..].to_vec(),
                        line: t.line,
                        col: toks.first().map_or(t.col, |f| f.col),
                    };
                }
                break;
            }
            _ => {}
        }
    }
    Stmt::Expr(toks.to_vec())
}

/// Base variable of an assignment target: strip a trailing `[...]` index,
/// then take the last identifier of the remaining path.
fn assign_target(toks: &[Tok]) -> Option<String> {
    let mut end = toks.len();
    if end > 0 && toks[end - 1].is_punct("]") {
        // Walk back to the matching `[`.
        let mut depth = 0i32;
        let mut j = end;
        while j > 0 {
            j -= 1;
            match toks[j].text.as_str() {
                "]" if toks[j].kind == TokKind::Punct => depth += 1,
                "[" if toks[j].kind == TokKind::Punct => {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    toks[..end]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident && t.text != "self")
        .map(|t| t.text.clone())
}

fn parse_let(toks: &[Tok], at: usize) -> (Stmt, usize) {
    let line = toks[at].line;
    // Pattern runs to the first top-level `:` or `=`.
    let mut i = at + 1;
    let mut depth = 0i32;
    let pat_start = i;
    let mut colon = None;
    let mut eq = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                ":" if depth == 0 && colon.is_none() && eq.is_none() => colon = Some(i),
                "=" if depth == 0 => {
                    eq = Some(i);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        i += 1;
    }
    let pat_end = colon.or(eq).unwrap_or(i);
    let names = pattern_bindings(&toks[pat_start..pat_end]);
    let ty = match (colon, eq) {
        (Some(c), Some(e)) => toks[c + 1..e].to_vec(),
        (Some(c), None) => toks[c + 1..i].to_vec(),
        _ => Vec::new(),
    };
    let (init_all, next) = match eq {
        Some(e) => scan_stmt_end(toks, e + 1),
        None => (&toks[i..i], i + 1),
    };
    // let-else: `... = init else { block };`
    let mut init = init_all.to_vec();
    let mut else_block = None;
    if let Some(epos) = find_top_ident(init_all, "else") {
        if init_all.get(epos + 1).is_some_and(|t| t.is_punct("{")) {
            let bstart = epos + 1;
            let bend = matching(init_all, bstart);
            else_block = Some(parse_block(&init_all[bstart + 1..bend.min(init_all.len())]));
            init = init_all[..epos].to_vec();
        }
    }
    (
        Stmt::Let {
            names,
            ty,
            init,
            else_block,
            line,
        },
        next,
    )
}

fn parse_if(toks: &[Tok], at: usize) -> (Stmt, usize) {
    let hdr = scan_to_body(toks, at + 1);
    let end = matching(toks, hdr);
    let cond = toks[at + 1..hdr].to_vec();
    let then_b = parse_block(&toks[hdr + 1..end.min(toks.len())]);
    let mut i = end + 1;
    let mut else_b = None;
    if toks.get(i).is_some_and(|t| t.is_ident("else")) {
        if toks.get(i + 1).is_some_and(|t| t.is_ident("if")) {
            let (nested, n) = parse_if(toks, i + 1);
            else_b = Some(Block {
                stmts: vec![nested],
            });
            i = n;
        } else if toks.get(i + 1).is_some_and(|t| t.is_punct("{")) {
            let bend = matching(toks, i + 1);
            else_b = Some(parse_block(&toks[i + 2..bend.min(toks.len())]));
            i = bend + 1;
        }
    }
    (
        Stmt::If {
            cond,
            then_b,
            else_b,
        },
        i,
    )
}

fn parse_for(toks: &[Tok], at: usize) -> (Stmt, usize) {
    // `for pat in iter { body }` — find top-level `in`.
    let mut i = at + 1;
    let mut depth = 0i32;
    let pat_start = i;
    let mut in_pos = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
        } else if depth == 0 && t.is_ident("in") {
            in_pos = Some(i);
            break;
        }
        i += 1;
    }
    let Some(in_pos) = in_pos else {
        let (_, n) = scan_stmt_end(toks, at);
        return (Stmt::Expr(toks[at..n.min(toks.len())].to_vec()), n);
    };
    let bindings = pattern_bindings(&toks[pat_start..in_pos]);
    let hdr = scan_to_body(toks, in_pos + 1);
    let end = matching(toks, hdr);
    (
        Stmt::For {
            bindings,
            iter: toks[in_pos + 1..hdr].to_vec(),
            body: parse_block(&toks[hdr + 1..end.min(toks.len())]),
        },
        end + 1,
    )
}

fn parse_match(toks: &[Tok], at: usize) -> (Stmt, usize) {
    let hdr = scan_to_body(toks, at + 1);
    let end = matching(toks, hdr);
    let scrutinee = toks[at + 1..hdr].to_vec();
    let inner = &toks[hdr + 1..end.min(toks.len())];
    let mut arms = Vec::new();
    let mut i = 0;
    while i < inner.len() {
        // Pattern (with optional guard) up to top-level `=>`.
        let arrow = match find_top(&inner[i..], "=>") {
            Some(a) => i + a,
            None => break,
        };
        let bindings = pattern_bindings(&inner[i..arrow]);
        let mut j = arrow + 1;
        let body = if inner.get(j).is_some_and(|t| t.is_punct("{")) {
            let bend = matching(inner, j);
            let b = parse_block(&inner[j + 1..bend.min(inner.len())]);
            j = bend + 1;
            b
        } else {
            // Expression arm: runs to top-level `,` or end of match body.
            let stop = find_top(&inner[j..], ",").map_or(inner.len(), |c| j + c);
            let b = parse_block(&inner[j..stop]);
            j = stop;
            b
        };
        arms.push((bindings, body));
        if inner.get(j).is_some_and(|t| t.is_punct(",")) {
            j += 1;
        }
        i = j;
    }
    (Stmt::Match { scrutinee, arms }, end + 1)
}

/// Identifiers bound by a pattern: lower-or-underscore-initial idents that
/// are not keywords and not immediately followed by `::` / `(` / `{` / `:`
/// (those are paths, tuple structs, struct patterns, field names).
fn pattern_bindings(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let first = t.text.chars().next().unwrap_or('_');
        if first.is_uppercase() {
            continue;
        }
        if let Some(next) = toks.get(i + 1) {
            if next.is_punct("::") || next.is_punct("(") || next.is_punct("{") {
                continue;
            }
        }
        if let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) {
            if prev.is_punct("::") || prev.is_punct(".") {
                continue;
            }
        }
        if !out.contains(&t.text) {
            out.push(t.text.clone());
        }
    }
    out
}

/// Index of the matching close bracket for the open bracket at `open`.
/// Counts all three bracket kinds together, which is valid for lexed Rust.
pub fn matching(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// First top-level `{` at or after `from` (header scan for if/while/for/
/// match). Struct literals never appear bare in these headers in this
/// codebase, so the first depth-0 `{` is the body.
fn scan_to_body(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    toks.len()
}

/// Statement end: the slice up to (not including) the terminating top-level
/// `;`, and the index just past it. A statement that ends the block (no
/// semicolon) runs to the end of the slice.
fn scan_stmt_end(toks: &[Tok], from: usize) -> (&[Tok], usize) {
    let mut depth = 0i32;
    let mut i = from;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => return (&toks[from..i], i + 1),
                _ => {}
            }
        }
        i += 1;
    }
    (&toks[from..], i)
}

/// Split a token slice at top-level occurrences of punct `sep`.
pub fn split_top<'a>(toks: &'a [Tok], sep: &str) -> Vec<&'a [Tok]> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                s if depth == 0 && s == sep => {
                    out.push(&toks[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
    }
    if start < toks.len() {
        out.push(&toks[start..]);
    }
    out
}

/// Index of the first top-level punct `sep`, bracket-aware.
pub fn find_top(toks: &[Tok], sep: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                s if depth == 0 && s == sep => return Some(i),
                _ => {}
            }
        }
    }
    None
}

/// Index of the first top-level ident `word`, bracket-aware.
fn find_top_ident(toks: &[Tok], word: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
        } else if depth == 0 && t.is_ident(word) {
            return Some(i);
        }
    }
    None
}

/// Visit every expression token slice in a block, recursively: let
/// initializers, assignment values, condition/iterator/scrutinee headers,
/// return expressions, and opaque expression statements. Used by the
/// interprocedural passes to enumerate call sites without lowering a CFG.
pub fn visit_exprs<'a>(block: &'a Block, f: &mut impl FnMut(&'a [Tok])) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                f(init);
                if let Some(eb) = else_block {
                    visit_exprs(eb, f);
                }
            }
            Stmt::Assign { value, .. } => f(value),
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                f(cond);
                visit_exprs(then_b, f);
                if let Some(eb) = else_b {
                    visit_exprs(eb, f);
                }
            }
            Stmt::While { cond, body } => {
                f(cond);
                visit_exprs(body, f);
            }
            Stmt::Loop { body } => visit_exprs(body, f),
            Stmt::For { iter, body, .. } => {
                f(iter);
                visit_exprs(body, f);
            }
            Stmt::Match { scrutinee, arms } => {
                f(scrutinee);
                for (_, body) in arms {
                    visit_exprs(body, f);
                }
            }
            Stmt::Block(b) | Stmt::Unsafe { body: b, .. } => visit_exprs(b, f),
            Stmt::Return(toks) | Stmt::Expr(toks) => f(toks),
            Stmt::Break | Stmt::Continue => {}
        }
    }
}

/// Join token texts with single spaces (normalized type / expr text).
pub fn join(toks: &[Tok]) -> String {
    toks.iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn fns(src: &str) -> Vec<FnDef> {
        parse_file(&lex(src))
    }

    #[test]
    fn extracts_fn_with_params() {
        let f = fns("pub fn any(ctr: &mut KernelCounters, mask: WarpMask) -> bool { true }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "any");
        assert!(f[0].is_pub);
        assert_eq!(f[0].params[0].name, "ctr");
        assert_eq!(f[0].params[0].ty, "& mut KernelCounters");
        assert_eq!(f[0].params[1].ty, "WarpMask");
    }

    #[test]
    fn finds_methods_inside_impl_and_marks_test_mods() {
        let src = "impl<'a, T: Clone> Foo<'a, T> {\n  fn run(&mut self) { self.x = 1; }\n}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn check() { }\n}";
        let f = fns(src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].name, "run");
        assert!(!f[0].in_test);
        assert!(f[1].in_test);
    }

    #[test]
    fn where_clause_does_not_confuse_body_start() {
        let f = fns("pub fn launch<R, F>(&self, body: F) -> Vec<R>\nwhere R: Send, F: Fn(usize) -> R + Sync {\n  let v = body(0);\n  vec![v]\n}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].body.stmts.len(), 2);
    }

    #[test]
    fn statements_classify() {
        let src = "fn k(mask: u32) {\n  let mut acc = 0u32;\n  for lane in 0..WARP_SIZE { acc += 1; }\n  if mask != 0 { acc = 2; } else { acc = 3; }\n  while acc > 0 { acc -= 1; }\n  match acc { 0 => {}, _ => {} }\n  loop { break; }\n}";
        let f = fns(src);
        let b = &f[0].body;
        assert!(matches!(b.stmts[0], Stmt::Let { .. }));
        assert!(matches!(b.stmts[1], Stmt::For { .. }));
        assert!(matches!(b.stmts[2], Stmt::If { .. }));
        assert!(matches!(b.stmts[3], Stmt::While { .. }));
        assert!(matches!(b.stmts[4], Stmt::Match { .. }));
        assert!(matches!(b.stmts[5], Stmt::Loop { .. }));
    }

    #[test]
    fn let_else_splits_off_diverging_block() {
        let f = fns("fn k() { let Some(x) = opt else { return; }; use_it(x); }");
        match &f[0].body.stmts[0] {
            Stmt::Let {
                names, else_block, ..
            } => {
                assert_eq!(names, &vec!["x".to_string()]);
                assert!(else_block.is_some());
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn assignment_targets_strip_indexing() {
        let f = fns("fn k() { s[lane] = ps; self.weight_sum += w; mask = m2; }");
        let targets: Vec<_> = f[0]
            .body
            .stmts
            .iter()
            .map(|s| match s {
                Stmt::Assign { target, op, .. } => (target.clone(), op.clone()),
                other => panic!("expected assign, got {other:?}"),
            })
            .collect();
        assert_eq!(
            targets,
            vec![
                ("s".to_string(), "=".to_string()),
                ("weight_sum".to_string(), "+=".to_string()),
                ("mask".to_string(), "=".to_string()),
            ]
        );
    }

    #[test]
    fn for_pattern_bindings() {
        let f = fns("fn k() { for (i, w) in ws.iter().enumerate() { use_it(i, w); } }");
        match &f[0].body.stmts[0] {
            Stmt::For { bindings, .. } => {
                assert_eq!(bindings, &vec!["i".to_string(), "w".to_string()])
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn match_arms_bind_patterns_not_variants() {
        let f = fns(
            "fn k(o: Option<usize>) { match o { None => {}, Some(b) if b > 0 => { hit(b); }, keep => drop(keep), } }",
        );
        match &f[0].body.stmts[0] {
            Stmt::Match { arms, .. } => {
                assert_eq!(arms.len(), 3);
                assert!(arms[1].0.contains(&"b".to_string()));
                assert!(arms[2].0.contains(&"keep".to_string()));
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn trait_method_decls_without_body_are_skipped() {
        let f = fns("trait T { fn a(&self) -> usize; fn b(&self) { } }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "b");
    }
}
