//! Known-bad: a per-iteration heap allocation inside the lockstep round
//! loop of a kernel entry point. The buffer must be hoisted above the
//! loop (allocate once with `with_capacity`, `.clear()` per round).
//! Expected: `alloc-in-hot-loop` at the `Vec::new()`.

pub fn run_block(ctr: &mut KernelCounters, mask: WarpMask) {
    for lane in 0..WARP_SIZE {
        let tmp = Vec::new();
        consume(&tmp, lane);
    }
    ctr.warp_instruction(mask);
}
