// Analyzer fixture: violates `primitive-charges-counters` — a warp
// primitive that takes the kernel counters but never charges them, so
// the modeled device time silently excludes this instruction. Never
// compiled; read as text by the fixture tests.

pub fn uncharged_any(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    mask: WarpMask,
    pred: &Lanes<bool>,
) -> bool {
    san.sync_op("any", mask);
    pred.iter()
        .enumerate()
        .any(|(i, &p)| mask & (1 << i) != 0 && p)
}
