// Analyzer fixture: violates `pool-race` — an unsynchronized cursor read
// follows an atomic fetch with no intervening block_barrier, so another
// warp's concurrent fetch can race the read. The dynamic racecheck flags
// the same pair. Never compiled; read as text by the fixture tests.

pub fn fetch_then_peek(pool: &SamplePool, san: &WarpSanitizer) -> (usize, usize) {
    let next = pool.fetch_sanitized(san);
    let cursor = pool.read_cursor_unsync(san);
    (next, cursor)
}
