//! Known-bad: a job submitted to the stream worker pool that blocks on an
//! event recorded by a sibling job. With every worker parked in `wait`,
//! no worker remains to record the event — self-deadlock. Expected:
//! `scope-blocking` at the `submit` call.

pub fn worker_waits_on_sibling(rs: &RuntimeScope, ev: &Event) {
    rs.submit(0, 0, move || ev.wait());
}
