// Analyzer fixture: violates `launch-confined` — a direct device launch
// outside crates/simt and the engine runtime module, bypassing the
// runtime layer's sharding, stream scheduling, and counter attribution.
// (It merges counters, so only the confinement rule fires.) Never
// compiled; read as text by the fixture tests.

pub fn stray_launch(device: &Device, report: &mut EngineReport) -> Vec<f64> {
    let (results, counters) = device.launch(|block| simulate(block));
    for c in &counters {
        report.counters.merge(c);
    }
    results
}
