// Analyzer fixture: violates `launch-merges-counters` — launches a kernel
// and drops the per-block counters on the floor, so the device report's
// modeled time excludes the whole kernel. (Placed under a `simt/` path so
// the launch-confined allow-list keeps this to exactly one diagnostic.)
// Never compiled; read as text by the fixture tests.

pub fn dropped_counters(device: &Device) -> f64 {
    let results = device.launch(|block| simulate(block));
    results.iter().map(|r| r.estimate).sum()
}
