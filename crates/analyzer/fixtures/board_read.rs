// Analyzer fixture: violates `prof-confined` — reads the runtime's
// counter board directly instead of consuming the attributed ProfReport,
// racing any stream that is still draining. Never compiled; read as text
// by the fixture tests.

pub fn board_read(rt: &Runtime) -> u64 {
    let c = rt.stream_counters(0, 0);
    c.mem_transactions
}
