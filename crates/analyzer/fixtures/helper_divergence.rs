//! Known-bad, interprocedural: the full-mask `ballot` is harmless inside
//! the helper (converged control), but the caller invokes the helper from
//! a per-lane loop — divergent control with no `set_active` declaration.
//! The intraprocedural analyzer sees nothing; the summary-driven analyzer
//! reports the call site. Expected: `divergent-sync` at the helper call.

fn full_ballot(ctr: &mut KernelCounters, san: &WarpSanitizer, pred: &Lanes<bool>) -> u32 {
    ballot(ctr, san, FULL_MASK, pred)
}

pub fn count_divergent(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    mask: WarpMask,
    pred: &Lanes<bool>,
) -> u32 {
    let mut acc = 0u32;
    for lane in lanes_of(mask) {
        acc |= full_ballot(ctr, san, pred);
    }
    acc
}
