// Analyzer fixture: violates `no-seqcst` — the device model is Relaxed
// counters plus Acquire/Release hand-off by design; SeqCst papers over
// missing ordering reasoning and costs a full fence per access. Never
// compiled; read as text by the fixture tests.

pub fn seqcst_ordering(cursor: &AtomicUsize) -> usize {
    cursor.load(Ordering::SeqCst)
}
