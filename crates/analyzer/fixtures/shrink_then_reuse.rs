// Analyzer fixture: violates `divergent-sync` — after shrinking the
// converged set with set_active(live), a later primitive still passes the
// original (stale) mask, claiming participation from lanes that exited.
// Never compiled; read as text by the fixture tests.

pub fn shrink_then_reuse(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    mask: WarpMask,
    exited: &Lanes<bool>,
    vals: &Lanes<f64>,
) -> f64 {
    let gone = ballot(ctr, san, mask, exited);
    let live = mask & !gone;
    san.set_active(live);
    reduce_sum(ctr, san, mask, vals)
}
