//! Known-bad: a sequence built while iterating a `HashMap`, whose element
//! order therefore varies run to run. Expected: `nondet-order` at the
//! `push` call.

pub fn kernel_names(by_id: &std::collections::HashMap<u32, String>) -> Vec<String> {
    let mut out = Vec::new();
    for name in by_id.values() {
        out.push(name.clone());
    }
    out
}
