//! Known-bad: a closure's borrow lifetime erased to `'static` in a file
//! that registers no `wait_all` drain, so nothing keeps the borrows alive
//! until the workers holding the erased closure finish. Expected:
//! `scope-blocking` at the `transmute`.

// SAFETY: callers must drain every worker holding the erased closure
// before the borrowed environment goes out of scope.
pub unsafe fn erase_job(job: Box<dyn FnOnce() + '_>) -> Box<dyn FnOnce() + 'static> {
    std::mem::transmute::<Box<dyn FnOnce() + '_>, Box<dyn FnOnce() + 'static>>(job)
}
