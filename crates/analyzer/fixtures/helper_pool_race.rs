//! Known-bad, interprocedural: the atomic pool fetch is hidden inside a
//! helper, and the caller follows the helper call with an unsynchronized
//! cursor read and no intervening `block_barrier`. The intraprocedural
//! analyzer sees nothing; the summary-driven analyzer composes the
//! helper's pool effect. Expected: `pool-race` at the cursor read.

fn drain_one(pool: &SamplePool, san: &WarpSanitizer) -> usize {
    pool.fetch_sanitized(san)
}

pub fn fetch_then_peek(pool: &SamplePool, san: &WarpSanitizer) -> usize {
    let taken = drain_one(pool, san);
    pool.read_cursor_unsync(san) + taken
}
