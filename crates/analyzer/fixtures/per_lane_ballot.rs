// Analyzer fixture: violates `divergent-sync` — a warp primitive invoked
// inside a per-lane loop (divergent control flow) with the full mask and
// no set_active declaration. On hardware this is UB: masked-out lanes
// never arrive at the collective. Never compiled; read as text by the
// fixture tests.

pub fn per_lane_ballot(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    mask: WarpMask,
    pred: &Lanes<bool>,
) -> u32 {
    let mut acc = 0u32;
    for lane in lanes_of(mask) {
        acc |= ballot(ctr, san, FULL_MASK, pred);
    }
    acc
}
