//! Known-bad: the lockstep round loop does nothing but issue one
//! `warp_load` per round — the exact shape `warp_load_rounds` replays in
//! a single batched call with bit-identical counters. Expected:
//! `charge-per-access` at the `warp_load`, naming the batch API.

pub fn run_block(ctr: &mut KernelCounters, san: &WarpSanitizer, bufs: &[Vec<usize>]) {
    let rounds = bufs.iter().map(Vec::len).max().unwrap_or(0);
    for r in 0..rounds {
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        for (lane, buf) in bufs.iter().enumerate() {
            if let Some(&a) = buf.get(r) {
                addrs[lane] = Some((Region::LOCAL, a));
            }
        }
        warp_load(ctr, san, &addrs);
    }
}
