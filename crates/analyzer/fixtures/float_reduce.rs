//! Known-bad: an f64 sum accumulated in `HashMap` iteration order.
//! Float addition is not associative, so the result's bits vary per run
//! and per shard count. Expected: `float-reduce-order` at the `+=`.

pub fn total_weight(weights: &std::collections::HashMap<u32, f64>) -> f64 {
    let mut sum: f64 = 0.0;
    for w in weights.values() {
        sum += w;
    }
    sum
}
