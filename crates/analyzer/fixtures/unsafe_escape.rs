//! Known-bad: a slice minted inside `unsafe` from a raw pointer is
//! returned to the caller, which now holds a reference whose validity
//! only this function's (undocumented) context established. Expected:
//! `unsafe-escape` at the `unsafe` block, with the escape message.

pub fn view_words(ptr: *const u32, len: usize) -> &'static [u32] {
    let s = unsafe { std::slice::from_raw_parts(ptr, len) };
    s
}
