//! Known-bad: the compressed adjacency of `u` is re-decoded on every
//! iteration of a loop `u` does not vary in — the decode re-walks the
//! same varint stream each time and must be hoisted above the loop.
//! Expected: `decode-in-loop` at the `neighbors_ref`.

pub fn probe_rounds(g: &CompressedGraph, u: VertexId, mask: WarpMask) -> usize {
    let mut total = 0usize;
    for _step in 0..WARP_SIZE {
        let adj = g.neighbors_ref(u);
        total += adj.len();
    }
    total
}
