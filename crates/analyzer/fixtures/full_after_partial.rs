// Analyzer fixture: violates `divergent-sync` — the executor declared
// only `mask` converged, but the primitive claims all 32 lanes
// participate. The dynamic synccheck flags the same call as a
// SyncMaskMismatch. Never compiled; read as text by the fixture tests.

pub fn full_after_partial(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    mask: WarpMask,
    pred: &Lanes<bool>,
) -> u32 {
    san.set_active(mask);
    ballot(ctr, san, u32::MAX, pred)
}
