// Lint fixture: violates `prof-confined` — reads the runtime's counter
// board directly instead of consuming the attributed ProfReport. Never
// compiled.

pub fn coalescing(rt: &Runtime) -> f64 {
    let c = rt.stream_counters(0, 0);
    let drained = rt.take_device_counters();
    c.mem_transactions as f64 / drained.len().max(1) as f64
}
