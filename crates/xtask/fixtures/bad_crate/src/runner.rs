// Lint fixture: violates `launch-merges-counters` — launches a kernel and
// drops the per-block counters on the floor. Never compiled.

pub fn run(device: &Device) -> f64 {
    let results = device.launch(|block| simulate(block));
    results.iter().map(|r| r.estimate).sum()
}
