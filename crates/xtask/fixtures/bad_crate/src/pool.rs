// Lint fixture: violates `no-seqcst`. Never compiled.

pub fn fetch(next: &std::sync::atomic::AtomicU64) -> u64 {
    next.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
}
