// Lint fixture: violates `primitive-charges-counters`. Never compiled —
// only read as text by the xtask lint tests.

pub fn uncounted_ballot(ctr: &mut KernelCounters, mask: u32, pred: &[bool; 32]) -> u32 {
    let mut out = 0u32;
    for (i, &p) in pred.iter().enumerate() {
        if mask & (1 << i) != 0 && p {
            out |= 1 << i;
        }
    }
    out
}
