//! Shape validation for SARIF 2.1.0 logs written by gsword-analyzer.
//!
//! Mirrors `gsword_prof::json::validate_chrome_trace`: the writer is
//! hand-rolled (the workspace carries no serde), so CI round-trips every
//! emitted log through the profiler's JSON parser and checks the
//! structural subset consumers (code-scanning UIs) rely on.

use gsword_prof::json::{parse, JsonValue};

/// What a valid log contained, for the one-line CLI summary.
pub struct SarifSummary {
    pub rules: usize,
    pub results: usize,
    /// Results carrying a region (line-scoped findings).
    pub located: usize,
}

/// Parse and shape-check a SARIF log. Returns a summary or the first
/// structural error.
pub fn validate_sarif(input: &str) -> Result<SarifSummary, String> {
    let v = parse(input)?;
    let version = v
        .get("version")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field 'version'")?;
    if version != "2.1.0" {
        return Err(format!("unsupported SARIF version '{version}'"));
    }
    let runs = v
        .get("runs")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field 'runs'")?;
    if runs.len() != 1 {
        return Err(format!("expected exactly one run, got {}", runs.len()));
    }
    let run = &runs[0];
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .ok_or("missing 'tool.driver'")?;
    let name = driver
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field 'tool.driver.name'")?;
    if name != "gsword-analyzer" {
        return Err(format!("unexpected driver name '{name}'"));
    }
    let rules = driver
        .get("rules")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field 'tool.driver.rules'")?;
    let mut rule_ids = Vec::new();
    for (i, r) in rules.iter().enumerate() {
        let id = r
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or(format!("rule {i}: missing string field 'id'"))?;
        if rule_ids.contains(&id) {
            return Err(format!("duplicate rule id '{id}'"));
        }
        r.get("shortDescription")
            .and_then(|d| d.get("text"))
            .and_then(JsonValue::as_str)
            .ok_or(format!("rule '{id}': missing 'shortDescription.text'"))?;
        rule_ids.push(id);
    }
    if rule_ids.is_empty() {
        return Err("empty 'tool.driver.rules'".into());
    }
    let results = run
        .get("results")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field 'results'")?;
    let mut located = 0;
    for (i, res) in results.iter().enumerate() {
        let rule_id = res
            .get("ruleId")
            .and_then(JsonValue::as_str)
            .ok_or(format!("result {i}: missing string field 'ruleId'"))?;
        if !rule_ids.contains(&rule_id) {
            return Err(format!(
                "result {i}: ruleId '{rule_id}' not in driver.rules"
            ));
        }
        if let Some(idx) = res.get("ruleIndex").and_then(JsonValue::as_f64) {
            if idx as usize >= rule_ids.len() || rule_ids[idx as usize] != rule_id {
                return Err(format!(
                    "result {i}: ruleIndex {idx} does not point at '{rule_id}'"
                ));
            }
        }
        res.get("message")
            .and_then(|m| m.get("text"))
            .and_then(JsonValue::as_str)
            .ok_or(format!("result {i}: missing 'message.text'"))?;
        let locations = res
            .get("locations")
            .and_then(JsonValue::as_array)
            .ok_or(format!("result {i}: missing array field 'locations'"))?;
        if locations.len() != 1 {
            return Err(format!("result {i}: expected exactly one location"));
        }
        let phys = locations[0]
            .get("physicalLocation")
            .ok_or(format!("result {i}: missing 'physicalLocation'"))?;
        let uri = phys
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(JsonValue::as_str)
            .ok_or(format!("result {i}: missing 'artifactLocation.uri'"))?;
        if uri.contains('\\') {
            return Err(format!("result {i}: uri '{uri}' must use forward slashes"));
        }
        if let Some(region) = phys.get("region") {
            let line = region
                .get("startLine")
                .and_then(JsonValue::as_f64)
                .ok_or(format!("result {i}: region without numeric 'startLine'"))?;
            if line < 1.0 || line.fract() != 0.0 {
                return Err(format!("result {i}: bad startLine {line}"));
            }
            if let Some(col) = region.get("startColumn").and_then(JsonValue::as_f64) {
                if col < 1.0 || col.fract() != 0.0 {
                    return Err(format!("result {i}: bad startColumn {col}"));
                }
            }
            located += 1;
        }
    }
    Ok(SarifSummary {
        rules: rule_ids.len(),
        results: results.len(),
        located,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsword_analyzer::{sarif::to_sarif, Finding};

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                file: "crates/engine/src/kernel.rs".into(),
                line: Some(12),
                col: Some(9),
                rule: "divergent-sync",
                message: "full mask under divergence".into(),
            },
            Finding {
                file: "crates/engine/src/warp.rs".into(),
                line: None,
                col: None,
                rule: "primitive-charges-counters",
                message: "never charges".into(),
            },
        ]
    }

    #[test]
    fn writer_output_validates() {
        let log = to_sarif(&sample());
        let s = validate_sarif(&log).expect("valid SARIF");
        assert_eq!(s.results, 2);
        assert_eq!(s.located, 1);
        assert_eq!(s.rules, gsword_analyzer::RULES.len());
    }

    #[test]
    fn empty_log_validates() {
        let s = validate_sarif(&to_sarif(&[])).expect("valid SARIF");
        assert_eq!(s.results, 0);
    }

    #[test]
    fn wrong_version_rejected() {
        let log = to_sarif(&[]).replace("2.1.0", "2.0.0");
        assert!(validate_sarif(&log).is_err());
    }

    #[test]
    fn unknown_rule_id_rejected() {
        let log =
            to_sarif(&sample()).replace("\"ruleId\": \"divergent-sync\"", "\"ruleId\": \"nope\"");
        assert!(validate_sarif(&log).is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(validate_sarif("{]").is_err());
        assert!(validate_sarif("{}").is_err());
    }
}
