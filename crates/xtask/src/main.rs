//! Repo maintenance tasks, invoked as `cargo xtask <task>`.
//!
//! The only task so far is `lint`: a repo-invariant checker that enforces
//! rules the compiler cannot (see [`lint`] for the rule list). It runs in
//! CI next to clippy and fails the build on any finding.

use std::path::PathBuf;
use std::process::ExitCode;

mod lint;

const USAGE: &str = "\
usage: cargo xtask <task>

tasks:
  lint [dir]           check repo invariants over `dir` (default: the
                       workspace's crates/ directory, excluding xtask
                       itself)
  check-trace <file>   validate a Chrome trace JSON written by
                       `gsword estimate --profile --trace-out <file>`
                       (parses the JSON, checks event shape, reports the
                       track count) — used by the CI profile-smoke step

invariants enforced by lint:
  1. every warp primitive in src/warp.rs taking &mut KernelCounters
     charges the counters (warp_instruction/warp_load/warp_store/diverge)
  2. no SeqCst atomic orderings (the device model is Relaxed/Acquire/
     Release by design; SeqCst hides missing reasoning about ordering)
  3. every Device::launch call site merges per-block KernelCounters
     (a launch path that drops counters silently corrupts modeled time)
  4. device launches (.launch/.launch_blocks) appear only in crates/simt
     and the engine runtime module; everything else goes through
     spawn_kernel/spawn_estimate/run_engine (the runtime layer owns
     sharding, stream scheduling, and counter attribution)
  5. counter-board reads (.stream_counters/.device_counters/
     .take_device_counters) appear only in crates/simt, crates/prof, and
     the engine runtime module; everything else consumes the attributed
     ProfReport / EngineReport";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = match args.get(1) {
                Some(p) => PathBuf::from(p),
                None => default_lint_root(),
            };
            if !root.exists() {
                eprintln!("xtask lint: no such directory: {}", root.display());
                return ExitCode::from(2);
            }
            let findings = lint::run(&root);
            if findings.is_empty() {
                println!("xtask lint: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("xtask lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("check-trace") => {
            let Some(path) = args.get(1) else {
                eprintln!("xtask check-trace: missing <file>\n{USAGE}");
                return ExitCode::from(2);
            };
            let json = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask check-trace: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match gsword_prof::json::validate_chrome_trace(&json) {
                Ok(summary) => {
                    println!(
                        "xtask check-trace: {path} ok — {} events ({} spans), \
                         {} stream track(s){}",
                        summary.events,
                        summary.complete_events,
                        summary.stream_tracks,
                        if summary.host_track { " + host" } else { "" },
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("xtask check-trace: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("help") | Some("--help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task '{other}'\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// The workspace's `crates/` directory (xtask lives at `crates/xtask`).
fn default_lint_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside crates/")
        .to_path_buf()
}
