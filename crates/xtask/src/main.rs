//! Repo maintenance tasks, invoked as `cargo xtask <task>`.
//!
//! `analyze` runs the gsword-analyzer static checks (interprocedural
//! uniformity/blocking dataflow over kernel CFGs plus the migrated repo
//! invariants) over the workspace's crates; `lint` is an alias kept for
//! existing CI invocations. `--sarif` writes the findings as a SARIF
//! 2.1.0 log (validated on the way out), `--gate` fails only on findings
//! not recorded in the checked-in baseline. `check-trace` validates
//! Chrome trace JSON emitted by the profiler; `check-sarif` validates a
//! SARIF log the same way.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

mod lint;
mod sarif_check;

const USAGE: &str = "\
usage: cargo xtask <task>

tasks:
  analyze [dir] [flags]
                       run the static lockstep-safety analyzer over `dir`
                       (default: the workspace's crates/ directory,
                       excluding xtask and fixture trees); reports
                       machine-readable findings `file:line:col: rule:
                       message` in deterministic order and fails on any
        --sarif <file>   also write the findings as a SARIF 2.1.0 log
                         (shape-validated after writing)
        --gate           compare findings against the checked-in baseline
                         and fail only on NEW findings; stale baseline
                         entries are reported but never fail the gate
        --baseline <f>   baseline file for --gate (default:
                         analyzer-baseline.txt at the workspace root;
                         missing file = empty baseline; lines starting
                         with '#' and blank lines are ignored)
        --hot-report     also print the ranked hot-region table: every
                         kernel function reachable from a run/run_block
                         entry, with its max loop nesting depth, in-loop
                         charge call sites, cost-rule hits, and call-graph
                         distance from the entry — the worklist for the
                         simulator speedup (ROADMAP item 2)
  lint [dir] [flags]   alias for analyze (the textual lint's rules are
                       now analyzer visitors; kept so CI invocations
                       don't break)
  check-sarif <file>   validate a SARIF 2.1.0 log written by
                       `cargo xtask analyze --sarif <file>` (parses the
                       JSON, checks driver/rules/results shape, reports
                       the result count) — used by the CI analyze step
  check-trace <file>   validate a Chrome trace JSON written by
                       `gsword estimate --profile --trace-out <file>`
                       (parses the JSON, checks event shape, reports the
                       track count) — used by the CI profile-smoke step
  bench --json         run the sampling + candidate bench groups in
                       quick mode (release build) and write
                       BENCH_sampling.json at the workspace root: median
                       ns per op keyed by bench id and git rev, plus the
                       legacy-vs-adaptive intersection speedups; the
                       artifact is validated after the run
  check-bench <file>   validate a BENCH_sampling.json artifact (parses
                       the JSON, checks every row has an id and a finite
                       median_ns) — used by the CI bench-smoke step
  pack [dir] [scale]   write all eight suite datasets as compressed
                       mmap-able images (<name>.gsw) into `dir` (default:
                       datasets/ at the workspace root) via `gsword pack
                       all`; the optional scale divides the paper's |V|
                       (1 = full paper size)

rules enforced by analyze/lint:
  1. divergent-sync: warp primitives (any/ballot/shfl/reduce_*) must not
     claim a full or stale participation mask that contradicts the
     set_active declaration or divergent control flow (static synccheck)
  2. pool-race: block-shared SamplePool accesses need a block_barrier
     between an atomic fetch and an unsynchronized cursor read on every
     path (static racecheck)
  3. primitive-charges-counters: every pub fn taking &mut KernelCounters
     charges the counters (warp_instruction/warp_load/warp_store/diverge)
     or forwards them to a callee
  4. no-seqcst: no SeqCst atomic orderings (the device model is
     Relaxed/Acquire/Release by design)
  5. launch-merges-counters: every Device::launch call site merges the
     per-block KernelCounters
  6. launch-confined: device launches (.launch/.launch_blocks) appear
     only in crates/simt and the engine runtime module
  7. prof-confined: counter-board reads (.stream_counters/
     .device_counters/.take_device_counters) appear only in crates/simt,
     crates/prof, and the engine runtime module
  8. nondet-order: HashMap/HashSet iteration order must not flow into
     estimates, reports, or serialized output (sort the entries first)
  9. float-reduce-order: f64/f32 accumulation whose order varies with
     shard or device count must go through a canonically ordered merge
  10. scope-blocking: blocking drains (scope/wait_all/wait/wait_report)
     must not be reachable from inside a pool worker job, and 'static
     transmute erasure needs a registered wait_all drain in the file
  11. alloc-in-hot-loop: no heap allocation (Vec::new/vec!/format!/
     Box::new/.collect()) inside a loop of a kernel-reachable hot
     function; hoist the buffer (with_capacity once, .clear() per
     iteration)
  12. charge-per-access: a loop whose only work is per-element cost
     charging must use the batched per-round API the finding names
     (warp_load_rounds) instead of one warp_load per element
  13. decode-in-loop: compressed adjacency decodes (neighbors_ref/
     decode_into/contains_with_probes) of a loop-invariant vertex must
     be hoisted above the loop
  14. unsafe-escape: every unsafe site carries a `// SAFETY:` comment;
     unsafe-derived slices/pointers that escape the validating function
     are called out explicitly

suppressions: `// gsword: allow(rule, ...)` on or immediately above the
flagged line; `// gsword: allow-file(rule)` anywhere in the file";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some(task @ ("analyze" | "lint")) => run_analyze(task, &args[1..]),
        Some("check-sarif") => {
            let Some(path) = args.get(1) else {
                eprintln!("xtask check-sarif: missing <file>\n{USAGE}");
                return ExitCode::from(2);
            };
            let json = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask check-sarif: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match sarif_check::validate_sarif(&json) {
                Ok(s) => {
                    println!(
                        "xtask check-sarif: {path} ok — {} result(s) ({} with \
                         source regions), {} rule(s)",
                        s.results, s.located, s.rules
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("xtask check-sarif: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check-trace") => {
            let Some(path) = args.get(1) else {
                eprintln!("xtask check-trace: missing <file>\n{USAGE}");
                return ExitCode::from(2);
            };
            let json = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask check-trace: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match gsword_prof::json::validate_chrome_trace(&json) {
                Ok(summary) => {
                    println!(
                        "xtask check-trace: {path} ok — {} events ({} spans), \
                         {} stream track(s){}",
                        summary.events,
                        summary.complete_events,
                        summary.stream_tracks,
                        if summary.host_track { " + host" } else { "" },
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("xtask check-trace: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("bench") => {
            if args.get(1).map(String::as_str) != Some("--json") {
                eprintln!("xtask bench: only the --json mode exists\n{USAGE}");
                return ExitCode::from(2);
            }
            let root = workspace_root();
            let status = std::process::Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "-p",
                    "gsword-bench",
                    "--bin",
                    "bench_json",
                    "--",
                    "--quick",
                ])
                .current_dir(&root)
                .status();
            match status {
                Ok(s) if s.success() => {}
                Ok(s) => {
                    eprintln!("xtask bench: bench_json exited with {s}");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("xtask bench: cannot spawn cargo: {e}");
                    return ExitCode::from(2);
                }
            }
            let artifact = root.join("BENCH_sampling.json");
            check_bench_file(&artifact.display().to_string())
        }
        Some("check-bench") => {
            let Some(path) = args.get(1) else {
                eprintln!("xtask check-bench: missing <file>\n{USAGE}");
                return ExitCode::from(2);
            };
            check_bench_file(path)
        }
        Some("pack") => {
            let root = workspace_root();
            let out = match args.get(1) {
                Some(p) => PathBuf::from(p),
                None => root.join("datasets"),
            };
            let mut cli = vec![
                "run".to_string(),
                "--release".to_string(),
                "-p".to_string(),
                "gsword-cli".to_string(),
                "--".to_string(),
                "pack".to_string(),
                "all".to_string(),
                "-o".to_string(),
                out.display().to_string(),
            ];
            if let Some(scale) = args.get(2) {
                cli.push("--scale".to_string());
                cli.push(scale.clone());
            }
            let status = std::process::Command::new("cargo")
                .args(&cli)
                .current_dir(&root)
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(s) => {
                    eprintln!("xtask pack: gsword pack exited with {s}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask pack: cannot spawn cargo: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("help") | Some("--help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task '{other}'\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// `cargo xtask analyze|lint [dir] [--gate] [--sarif <f>] [--baseline <f>]`.
fn run_analyze(task: &str, rest: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut gate = false;
    let mut hot_report = false;
    let mut sarif_out: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--gate" => gate = true,
            "--hot-report" => hot_report = true,
            "--sarif" | "--baseline" => {
                let flag = rest[i].clone();
                i += 1;
                let Some(p) = rest.get(i) else {
                    eprintln!("xtask {task}: {flag} needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                };
                if flag == "--sarif" {
                    sarif_out = Some(PathBuf::from(p));
                } else {
                    baseline_path = Some(PathBuf::from(p));
                }
            }
            flag if flag.starts_with("--") => {
                eprintln!("xtask {task}: unknown flag '{flag}'\n{USAGE}");
                return ExitCode::from(2);
            }
            p => {
                if root.is_some() {
                    eprintln!("xtask {task}: more than one directory given\n{USAGE}");
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(p));
            }
        }
        i += 1;
    }
    let root = root.unwrap_or_else(default_analyze_root);
    if !root.exists() {
        eprintln!("xtask {task}: no such directory: {}", root.display());
        return ExitCode::from(2);
    }

    let findings = lint::run(&root);

    if hot_report {
        let rows = gsword_analyzer::hot_report_tree(&root);
        println!(
            "hot-region report ({} function(s) reachable from {:?}):",
            rows.len(),
            gsword_analyzer::hot::HOT_ENTRIES
        );
        print!("{}", gsword_analyzer::hot::render(&rows));
    }

    if let Some(path) = &sarif_out {
        let log = gsword_analyzer::sarif::to_sarif(&findings);
        if let Err(e) = std::fs::write(path, &log) {
            eprintln!("xtask {task}: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        // The writer is hand-rolled; never ship a log we can't re-read.
        match sarif_check::validate_sarif(&log) {
            Ok(s) => println!(
                "xtask {task}: wrote {} ({} result(s), validated)",
                path.display(),
                s.results
            ),
            Err(e) => {
                eprintln!("xtask {task}: emitted invalid SARIF: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if gate {
        let bpath = baseline_path.unwrap_or_else(|| workspace_root().join("analyzer-baseline.txt"));
        let baseline = read_baseline(&bpath);
        let current: BTreeSet<String> = findings.iter().map(ToString::to_string).collect();
        let new: Vec<&String> = current.iter().filter(|f| !baseline.contains(*f)).collect();
        let stale: Vec<&String> = baseline.iter().filter(|b| !current.contains(*b)).collect();
        for s in &stale {
            eprintln!("xtask {task}: stale baseline entry (fixed? remove it): {s}");
        }
        if new.is_empty() {
            println!(
                "xtask {task}: gate clean ({}) — {} finding(s), all baselined",
                root.display(),
                current.len()
            );
            ExitCode::SUCCESS
        } else {
            for f in &new {
                eprintln!("{f}");
            }
            eprintln!(
                "xtask {task}: {} NEW finding(s) not in {}",
                new.len(),
                bpath.display()
            );
            ExitCode::FAILURE
        }
    } else if findings.is_empty() {
        println!("xtask {task}: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("xtask {task}: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// Baseline file -> set of finding strings. A missing file is an empty
/// baseline; blank lines and `#` comments are skipped.
fn read_baseline(path: &PathBuf) -> BTreeSet<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeSet::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(ToString::to_string)
        .collect()
}

/// The workspace's `crates/` directory (xtask lives at `crates/xtask`).
fn default_analyze_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside crates/")
        .to_path_buf()
}

/// The workspace root (`crates/` sits directly under it).
fn workspace_root() -> PathBuf {
    default_analyze_root()
        .parent()
        .expect("crates/ sits inside the workspace")
        .to_path_buf()
}

/// Parse and shape-check a `BENCH_sampling.json` artifact.
fn check_bench_file(path: &str) -> ExitCode {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask check-bench: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let value = match gsword_prof::json::parse(&json) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask check-bench: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(rev) = value.get("git_rev").and_then(|v| v.as_str()) else {
        eprintln!("xtask check-bench: {path}: missing string field 'git_rev'");
        return ExitCode::FAILURE;
    };
    let Some(rows) = value.get("benches").and_then(|v| v.as_array()) else {
        eprintln!("xtask check-bench: {path}: missing array field 'benches'");
        return ExitCode::FAILURE;
    };
    if rows.is_empty() {
        eprintln!("xtask check-bench: {path}: empty 'benches' array");
        return ExitCode::FAILURE;
    }
    let mut ids = BTreeSet::new();
    for (i, row) in rows.iter().enumerate() {
        let id = row.get("id").and_then(|v| v.as_str());
        let ns = row.get("median_ns").and_then(|v| v.as_f64());
        match (id, ns) {
            (Some(id), Some(ns)) if ns.is_finite() && ns > 0.0 => {
                ids.insert(id.to_string());
            }
            _ => {
                eprintln!(
                    "xtask check-bench: {path}: row {i} needs a string 'id' \
                     and a positive finite 'median_ns'"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    // The rail's contract: every comparison the docs cite must be present,
    // including the compressed-vs-CSR storage rows.
    const REQUIRED_IDS: [&str; 27] = [
        "storage/charge_probes/per_access/yeast",
        "storage/charge_probes/batched/yeast",
        "storage/charge_probes/per_access/eu2005",
        "storage/charge_probes/batched/eu2005",
        "cpu_sampling/WJ/yeast",
        "cpu_sampling/AL/yeast",
        "candidate_build/full/yeast",
        "candidate_build/adaptive/yeast",
        "candidate_build/legacy/yeast",
        "alley_refine/adaptive/yeast",
        "alley_refine/legacy/yeast",
        "sim/wall/serial/yeast",
        "sim/wall/parallel/yeast",
        "storage/neighbor_scan/csr/yeast",
        "storage/neighbor_scan/compressed/yeast",
        "storage/neighbor_scan/cached/yeast",
        "storage/neighbor_scan/csr/eu2005",
        "storage/neighbor_scan/compressed/eu2005",
        "storage/neighbor_scan/cached/eu2005",
        "storage/member_probe/csr/yeast",
        "storage/member_probe/compressed/yeast",
        "storage/member_probe/csr/eu2005",
        "storage/member_probe/compressed/eu2005",
        "storage/candidate_build/csr/yeast",
        "storage/candidate_build/compressed/yeast",
        "storage/candidate_build/csr/eu2005",
        "storage/candidate_build/compressed/eu2005",
    ];
    for required in REQUIRED_IDS {
        if !ids.contains(required) {
            eprintln!("xtask check-bench: {path}: missing required bench id '{required}'");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "xtask check-bench: {path} ok — {} bench row(s) at rev {rev}",
        rows.len()
    );
    ExitCode::SUCCESS
}
