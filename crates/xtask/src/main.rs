//! Repo maintenance tasks, invoked as `cargo xtask <task>`.
//!
//! `analyze` runs the gsword-analyzer static checks (uniformity dataflow
//! over kernel CFGs plus the migrated repo invariants) over the
//! workspace's crates and fails on any finding; `lint` is an alias kept
//! for existing CI invocations. `check-trace` validates Chrome trace JSON
//! emitted by the profiler.

use std::path::PathBuf;
use std::process::ExitCode;

mod lint;

const USAGE: &str = "\
usage: cargo xtask <task>

tasks:
  analyze [dir]        run the static lockstep-safety analyzer over `dir`
                       (default: the workspace's crates/ directory,
                       excluding xtask and fixture trees); reports
                       machine-readable findings `file:line: rule:
                       message` and fails on any
  lint [dir]           alias for analyze (the textual lint's rules are
                       now analyzer visitors; kept so CI invocations
                       don't break)
  check-trace <file>   validate a Chrome trace JSON written by
                       `gsword estimate --profile --trace-out <file>`
                       (parses the JSON, checks event shape, reports the
                       track count) — used by the CI profile-smoke step
  bench --json         run the sampling + candidate bench groups in
                       quick mode (release build) and write
                       BENCH_sampling.json at the workspace root: median
                       ns per op keyed by bench id and git rev, plus the
                       legacy-vs-adaptive intersection speedups; the
                       artifact is validated after the run
  check-bench <file>   validate a BENCH_sampling.json artifact (parses
                       the JSON, checks every row has an id and a finite
                       median_ns) — used by the CI bench-smoke step

rules enforced by analyze/lint:
  1. divergent-sync: warp primitives (any/ballot/shfl/reduce_*) must not
     claim a full or stale participation mask that contradicts the
     set_active declaration or divergent control flow (static synccheck)
  2. pool-race: block-shared SamplePool accesses need a block_barrier
     between an atomic fetch and an unsynchronized cursor read on every
     path (static racecheck)
  3. primitive-charges-counters: every pub fn taking &mut KernelCounters
     charges the counters (warp_instruction/warp_load/warp_store/diverge)
     or forwards them to a callee
  4. no-seqcst: no SeqCst atomic orderings (the device model is
     Relaxed/Acquire/Release by design)
  5. launch-merges-counters: every Device::launch call site merges the
     per-block KernelCounters
  6. launch-confined: device launches (.launch/.launch_blocks) appear
     only in crates/simt and the engine runtime module
  7. prof-confined: counter-board reads (.stream_counters/
     .device_counters/.take_device_counters) appear only in crates/simt,
     crates/prof, and the engine runtime module";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some(task @ ("analyze" | "lint")) => {
            let root = match args.get(1) {
                Some(p) => PathBuf::from(p),
                None => default_analyze_root(),
            };
            if !root.exists() {
                eprintln!("xtask {task}: no such directory: {}", root.display());
                return ExitCode::from(2);
            }
            let findings = lint::run(&root);
            if findings.is_empty() {
                println!("xtask {task}: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("xtask {task}: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("check-trace") => {
            let Some(path) = args.get(1) else {
                eprintln!("xtask check-trace: missing <file>\n{USAGE}");
                return ExitCode::from(2);
            };
            let json = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask check-trace: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match gsword_prof::json::validate_chrome_trace(&json) {
                Ok(summary) => {
                    println!(
                        "xtask check-trace: {path} ok — {} events ({} spans), \
                         {} stream track(s){}",
                        summary.events,
                        summary.complete_events,
                        summary.stream_tracks,
                        if summary.host_track { " + host" } else { "" },
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("xtask check-trace: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("bench") => {
            if args.get(1).map(String::as_str) != Some("--json") {
                eprintln!("xtask bench: only the --json mode exists\n{USAGE}");
                return ExitCode::from(2);
            }
            let root = workspace_root();
            let status = std::process::Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "-p",
                    "gsword-bench",
                    "--bin",
                    "bench_json",
                    "--",
                    "--quick",
                ])
                .current_dir(&root)
                .status();
            match status {
                Ok(s) if s.success() => {}
                Ok(s) => {
                    eprintln!("xtask bench: bench_json exited with {s}");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("xtask bench: cannot spawn cargo: {e}");
                    return ExitCode::from(2);
                }
            }
            let artifact = root.join("BENCH_sampling.json");
            check_bench_file(&artifact.display().to_string())
        }
        Some("check-bench") => {
            let Some(path) = args.get(1) else {
                eprintln!("xtask check-bench: missing <file>\n{USAGE}");
                return ExitCode::from(2);
            };
            check_bench_file(path)
        }
        Some("help") | Some("--help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task '{other}'\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// The workspace's `crates/` directory (xtask lives at `crates/xtask`).
fn default_analyze_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside crates/")
        .to_path_buf()
}

/// The workspace root (`crates/` sits directly under it).
fn workspace_root() -> PathBuf {
    default_analyze_root()
        .parent()
        .expect("crates/ sits inside the workspace")
        .to_path_buf()
}

/// Parse and shape-check a `BENCH_sampling.json` artifact.
fn check_bench_file(path: &str) -> ExitCode {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask check-bench: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let value = match gsword_prof::json::parse(&json) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask check-bench: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(rev) = value.get("git_rev").and_then(|v| v.as_str()) else {
        eprintln!("xtask check-bench: {path}: missing string field 'git_rev'");
        return ExitCode::FAILURE;
    };
    let Some(rows) = value.get("benches").and_then(|v| v.as_array()) else {
        eprintln!("xtask check-bench: {path}: missing array field 'benches'");
        return ExitCode::FAILURE;
    };
    if rows.is_empty() {
        eprintln!("xtask check-bench: {path}: empty 'benches' array");
        return ExitCode::FAILURE;
    }
    for (i, row) in rows.iter().enumerate() {
        let id = row.get("id").and_then(|v| v.as_str());
        let ns = row.get("median_ns").and_then(|v| v.as_f64());
        match (id, ns) {
            (Some(_), Some(ns)) if ns.is_finite() && ns > 0.0 => {}
            _ => {
                eprintln!(
                    "xtask check-bench: {path}: row {i} needs a string 'id' \
                     and a positive finite 'median_ns'"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "xtask check-bench: {path} ok — {} bench row(s) at rev {rev}",
        rows.len()
    );
    ExitCode::SUCCESS
}
