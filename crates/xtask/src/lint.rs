//! The repo-invariant lint, now a thin alias for the static analyzer.
//!
//! The textual rules that used to live here (brace-matching signature
//! scans, per-line `split("//")` comment stripping) migrated to
//! `gsword-analyzer`, which lexes and parses the source properly and adds
//! the kernel-body dataflow rules (`divergent-sync`, `pool-race`) on top.
//! `cargo xtask lint` and `cargo xtask analyze` are the same check; the
//! lint name is kept so existing CI invocations don't break. Finding
//! messages for the migrated rules are byte-identical to the old ones.

use std::path::Path;

/// Walk `root` and run every analyzer rule on each `.rs` file. Paths
/// containing an `xtask` or `fixtures` component are skipped — both
/// fixture trees violate the rules on purpose. Both the `analyze` and
/// `lint` tasks funnel through here; callers stringify via `Display`
/// (`file[:line[:col]]: rule: message`) or hand the structs to the SARIF
/// writer.
pub fn run(root: &Path) -> Vec<gsword_analyzer::Finding> {
    gsword_analyzer::analyze_tree(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn workspace_is_clean() {
        let findings = run(crate_root().parent().unwrap());
        assert!(
            findings.is_empty(),
            "workspace lint findings:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn fixture_crate_fails_every_rule() {
        // The bad_crate fixtures live under crates/xtask/, which `run`
        // skips — analyze the fixture tree directly, as the old textual
        // lint's test did.
        let fixtures = crate_root().join("fixtures");
        let mut files = Vec::new();
        collect_rs_files(&fixtures, &mut files);
        files.sort();
        assert!(
            !files.is_empty(),
            "missing lint fixtures at {}",
            fixtures.display()
        );
        let mut findings = Vec::new();
        for path in files {
            let src = std::fs::read_to_string(&path).unwrap();
            let shown = path.file_name().unwrap().to_string_lossy().to_string();
            findings.extend(
                gsword_analyzer::analyze_source(&shown, &src)
                    .iter()
                    .map(ToString::to_string),
            );
        }
        let text = findings.join("\n");
        assert!(text.contains("primitive-charges-counters"), "{text}");
        assert!(text.contains("no-seqcst"), "{text}");
        assert!(text.contains("launch-merges-counters"), "{text}");
        assert!(text.contains("launch-confined"), "{text}");
        assert!(text.contains("prof-confined"), "{text}");
    }

    #[test]
    fn finding_format_is_unchanged() {
        // The migrated rules must keep the legacy message text so CI diffs
        // and tooling that greps lint output stay stable. Line-scoped
        // findings now also carry a column (`file:line:col:`); file-scoped
        // ones keep the bare `file:` prefix.
        let f = gsword_analyzer::analyze_source(
            "warp.rs",
            "pub fn bad(ctr: &mut KernelCounters, mask: u32) -> u32 { mask }\n",
        );
        assert_eq!(
            f[0].to_string(),
            "warp.rs: primitive-charges-counters: pub fn bad takes &mut \
             KernelCounters but never charges them \
             (warp_instruction/warp_load/warp_store/diverge)"
        );
        let g = gsword_analyzer::analyze_source(
            "core/src/builder.rs",
            "fn f() { let c = rt.stream_counters(0, 0); }\n",
        );
        assert_eq!(
            g[0].to_string(),
            "core/src/builder.rs:1:21: prof-confined: direct counter-board \
             read outside crates/simt, crates/prof, and the engine runtime \
             module (consume ProfReport / EngineReport instead)"
        );
    }

    fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                collect_rs_files(&path, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }

    fn crate_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
    }
}
