//! The repo-invariant lint rules.
//!
//! These are textual checks, deliberately simple: they parse just enough
//! Rust (brace matching, signature scanning) to enforce invariants the
//! type system cannot express, and they run on every file under the lint
//! root except `xtask` itself (whose fixtures intentionally violate them).

use std::fs;
use std::path::{Path, PathBuf};

/// A single lint finding, formatted `file: rule: message`.
pub type Finding = String;

/// Walk `root` and apply every rule to each `.rs` file. Paths containing
/// an `xtask` component are skipped — the lint's own fixtures violate the
/// rules on purpose.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        // Skip xtask itself (fixtures violate the rules on purpose), but
        // only relative to the lint root — pointing the lint *at* a
        // fixture tree still checks it.
        let rel = path.strip_prefix(root).unwrap_or(&path);
        if rel.components().any(|c| c.as_os_str() == "xtask") {
            continue;
        }
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let shown = rel.display().to_string();
        if path.file_name().is_some_and(|n| n == "warp.rs") {
            findings.extend(check_primitives_charge(&shown, &src));
        }
        findings.extend(check_no_seqcst(&shown, &src));
        findings.extend(check_launch_merges(&shown, &src));
        findings.extend(check_launch_confined(&shown, &src));
        findings.extend(check_prof_confined(&shown, &src));
    }
    findings
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

const CHARGE_CALLS: &[&str] = &[
    "ctr.warp_instruction(",
    "ctr.warp_load(",
    "ctr.warp_store(",
    "ctr.diverge(",
];

/// Rule 1: every `pub fn` in a `warp.rs` whose signature takes
/// `ctr: &mut KernelCounters` must charge the counters in its body. A warp
/// primitive that forgets to charge silently corrupts the modeled device
/// time every kernel reports.
pub fn check_primitives_charge(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, sig, body) in public_fns(src) {
        if !sig.contains("ctr: &mut KernelCounters") {
            continue;
        }
        if !CHARGE_CALLS.iter().any(|c| body.contains(c)) {
            findings.push(format!(
                "{file}: primitive-charges-counters: pub fn {name} takes \
                 &mut KernelCounters but never charges them \
                 (warp_instruction/warp_load/warp_store/diverge)"
            ));
        }
    }
    findings
}

/// Rule 2: no `SeqCst` atomic orderings. The simulator's concurrency is
/// designed around Relaxed counters plus Acquire/Release hand-off; a
/// SeqCst that creeps in usually papers over an ordering bug instead of
/// fixing it, and costs a full fence on every access.
pub fn check_no_seqcst(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let code = line.split("//").next().unwrap_or(line);
        if code.contains("SeqCst") {
            findings.push(format!(
                "{file}:{}: no-seqcst: SeqCst ordering is banned (use \
                 Relaxed or Acquire/Release and document why)",
                i + 1
            ));
        }
    }
    findings
}

/// Rule 3: a file that calls `Device::launch` must also merge
/// `KernelCounters` (`.merge(`). A launch path that drops the per-block
/// counters produces reports whose modeled time excludes that kernel.
pub fn check_launch_merges(file: &str, src: &str) -> Vec<Finding> {
    let mut calls_launch = false;
    let mut merges = false;
    for line in src.lines() {
        let code = line.split("//").next().unwrap_or(line);
        if code.contains(".launch(") {
            calls_launch = true;
        }
        if code.contains(".merge(") {
            merges = true;
        }
    }
    // Skip the definition site itself: `pub fn launch` lives in the simt
    // crate and has no counters to merge.
    if calls_launch && !merges && !src.contains("pub fn launch") {
        vec![format!(
            "{file}: launch-merges-counters: calls Device::launch but never \
             merges the per-block KernelCounters"
        )]
    } else {
        vec![]
    }
}

/// Rule 4: device launches (`.launch(` / `.launch_blocks(`) are confined
/// to the simt crate and the engine's runtime module. Everything else must
/// go through the runtime layer (`spawn_kernel` / `spawn_estimate` /
/// `run_engine`), which owns sharding, stream scheduling, and counter
/// attribution — a stray direct launch bypasses all three.
pub fn check_launch_confined(file: &str, src: &str) -> Vec<Finding> {
    let normalized = file.replace('\\', "/");
    let allowed =
        normalized.split('/').any(|c| c == "simt") || normalized.ends_with("engine/src/runtime.rs");
    if allowed {
        return vec![];
    }
    let mut findings = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let code = line.split("//").next().unwrap_or(line);
        if code.contains(".launch(") || code.contains(".launch_blocks(") {
            findings.push(format!(
                "{file}:{}: launch-confined: direct device launch outside \
                 crates/simt and the engine runtime module (go through \
                 spawn_kernel/spawn_estimate/run_engine)",
                i + 1
            ));
        }
    }
    findings
}

/// Rule 5: counter-board reads (`.stream_counters(` / `.device_counters(`
/// / `.take_device_counters(`) are confined to the simt and prof crates
/// and the engine's runtime module. The board is the profiler's raw feed;
/// everything else consumes the attributed [`ProfReport`] / engine report
/// instead, so metric definitions stay in one place and a board read
/// cannot race a stream that is still draining.
pub fn check_prof_confined(file: &str, src: &str) -> Vec<Finding> {
    const BOARD_READS: &[&str] = &[
        ".stream_counters(",
        ".device_counters(",
        ".take_device_counters(",
    ];
    let normalized = file.replace('\\', "/");
    let allowed = normalized.split('/').any(|c| c == "simt" || c == "prof")
        || normalized.ends_with("engine/src/runtime.rs");
    if allowed {
        return vec![];
    }
    let mut findings = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let code = line.split("//").next().unwrap_or(line);
        if BOARD_READS.iter().any(|c| code.contains(c)) {
            findings.push(format!(
                "{file}:{}: prof-confined: direct counter-board read outside \
                 crates/simt, crates/prof, and the engine runtime module \
                 (consume ProfReport / EngineReport instead)",
                i + 1
            ));
        }
    }
    findings
}

/// Yield `(name, signature, body)` for each `pub fn` in `src`, using brace
/// matching. Good enough for the controlled style of this workspace; not a
/// general Rust parser.
fn public_fns(src: &str) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut search_from = 0;
    while let Some(rel) = src[search_from..].find("pub fn ") {
        let start = search_from + rel;
        let name_start = start + "pub fn ".len();
        let name_end = src[name_start..]
            .find(['(', '<'])
            .map_or(src.len(), |i| name_start + i);
        let name = src[name_start..name_end].trim().to_string();

        // Signature: up to the opening `{` (or, for a bodiless trait
        // declaration, a `;`) — but only outside parens/brackets, so a
        // `;` inside `&[bool; 32]` doesn't end the signature early.
        let mut body_open = None;
        let mut nest = 0i32;
        for (i, &b) in bytes[start..].iter().enumerate() {
            match b {
                b'(' | b'[' | b'<' => nest += 1,
                b')' | b']' | b'>' => nest -= 1,
                b'{' if nest <= 0 => {
                    body_open = Some(start + i);
                    break;
                }
                b';' if nest <= 0 => break,
                _ => {}
            }
        }
        let Some(body_open) = body_open else {
            search_from = name_end;
            continue;
        };
        let sig = src[start..body_open].to_string();

        // Body: brace-match from `body_open`.
        let mut depth = 0usize;
        let mut end = body_open;
        for (i, &b) in bytes[body_open..].iter().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = body_open + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push((name, sig, src[body_open..end].to_string()));
        search_from = end.max(body_open + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_primitive_passes() {
        let src = "pub fn any(ctr: &mut KernelCounters, mask: u32) -> bool {\n    ctr.warp_instruction(mask);\n    true\n}\n";
        assert!(check_primitives_charge("warp.rs", src).is_empty());
    }

    #[test]
    fn non_charging_primitive_flagged() {
        let src =
            "pub fn bad(ctr: &mut KernelCounters, mask: u32) -> u32 {\n    mask.count_ones()\n}\n";
        let f = check_primitives_charge("warp.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("pub fn bad"), "{f:?}");
    }

    #[test]
    fn fns_without_counters_ignored() {
        let src = "pub fn first_lane(ballot: u32) -> Option<usize> {\n    None\n}\n";
        assert!(check_primitives_charge("warp.rs", src).is_empty());
    }

    #[test]
    fn seqcst_flagged_with_line() {
        let src = "let x = a.load(Ordering::Relaxed);\nlet y = b.load(Ordering::SeqCst);\n";
        let f = check_no_seqcst("f.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("f.rs:2"), "{f:?}");
    }

    #[test]
    fn seqcst_in_comment_allowed() {
        let src = "// SeqCst would be wrong here\nlet x = a.load(Ordering::Relaxed);\n";
        assert!(check_no_seqcst("f.rs", src).is_empty());
    }

    #[test]
    fn launch_without_merge_flagged() {
        let src = "let out = device.launch(|b| run(b));\n";
        assert_eq!(check_launch_merges("f.rs", src).len(), 1);
    }

    #[test]
    fn launch_with_merge_passes() {
        let src = "let out = device.launch(|b| run(b));\nfor c in &out { counters.merge(c); }\n";
        assert!(check_launch_merges("f.rs", src).is_empty());
    }

    #[test]
    fn launch_definition_site_exempt() {
        let src = "pub fn launch<R, F>(&self, body: F) -> Vec<R> {\n    self.run(body)\n}\nlet x = d.launch(f);\n";
        assert!(check_launch_merges("device.rs", src).is_empty());
    }

    #[test]
    fn launch_outside_runtime_flagged() {
        let src = "let out = device.launch(|b| run(b));\n";
        let f = check_launch_confined("crates/pipeline/src/trawl.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("launch-confined"), "{f:?}");
        let g = check_launch_confined("crates/engine/src/kernel.rs", "x.launch_blocks(0..2, f);\n");
        assert_eq!(g.len(), 1, "{g:?}");
    }

    #[test]
    fn launch_in_simt_or_engine_runtime_allowed() {
        let src = "let out = device.launch_blocks(0..4, |b| run(b));\n";
        assert!(check_launch_confined("crates/simt/src/runtime.rs", src).is_empty());
        assert!(check_launch_confined("crates/simt/src/device.rs", src).is_empty());
        assert!(check_launch_confined("crates/engine/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn launch_in_comment_not_flagged() {
        let src = "// call device.launch(body) through the runtime instead\n";
        assert!(check_launch_confined("crates/core/src/builder.rs", src).is_empty());
    }

    #[test]
    fn board_read_outside_prof_flagged() {
        let src = "let c = runtime.stream_counters(0, 1);\n";
        let f = check_prof_confined("crates/core/src/builder.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("prof-confined"), "{f:?}");
        let g = check_prof_confined(
            "crates/bench/benches/device.rs",
            "let v = rt.take_device_counters();\n",
        );
        assert_eq!(g.len(), 1, "{g:?}");
    }

    #[test]
    fn board_read_in_simt_prof_or_engine_runtime_allowed() {
        let src = "let c = self.device_counters(d);\nlet s = rt.stream_counters(0, 0);\n";
        assert!(check_prof_confined("crates/simt/src/runtime.rs", src).is_empty());
        assert!(check_prof_confined("crates/prof/src/lib.rs", src).is_empty());
        assert!(check_prof_confined("crates/engine/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn board_read_in_comment_not_flagged() {
        let src = "// read via runtime.stream_counters(d, s) in simt only\n";
        assert!(check_prof_confined("crates/core/src/builder.rs", src).is_empty());
    }

    #[test]
    fn workspace_is_clean() {
        let findings = run(crate_root().parent().unwrap());
        assert!(
            findings.is_empty(),
            "workspace lint findings:\n{}",
            findings.join("\n")
        );
    }

    #[test]
    fn fixture_crate_fails_every_rule() {
        let fixtures = crate_root().join("fixtures");
        // Fixtures live under crates/xtask/, which `run` skips — lint the
        // fixture tree directly.
        let mut findings = Vec::new();
        let mut files = Vec::new();
        collect_rs_files(&fixtures, &mut files);
        files.sort();
        assert!(
            !files.is_empty(),
            "missing lint fixtures at {}",
            fixtures.display()
        );
        for path in files {
            let src = std::fs::read_to_string(&path).unwrap();
            let shown = path.file_name().unwrap().to_string_lossy().to_string();
            if shown == "warp.rs" {
                findings.extend(check_primitives_charge(&shown, &src));
            }
            findings.extend(check_no_seqcst(&shown, &src));
            findings.extend(check_launch_merges(&shown, &src));
            findings.extend(check_launch_confined(&shown, &src));
            findings.extend(check_prof_confined(&shown, &src));
        }
        let text = findings.join("\n");
        assert!(text.contains("primitive-charges-counters"), "{text}");
        assert!(text.contains("no-seqcst"), "{text}");
        assert!(text.contains("launch-merges-counters"), "{text}");
        assert!(text.contains("launch-confined"), "{text}");
        assert!(text.contains("prof-confined"), "{text}");
    }

    fn crate_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
    }
}
